#include "stream/engine.hpp"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>

#include "io/state_io.hpp"
#include "util/assert.hpp"

namespace pss::stream {

StreamEngine::StreamEngine(EngineOptions options)
    : options_(options),
      router_(options.num_shards),
      paused_(options.start_paused) {
  PSS_REQUIRE(options_.num_shards >= 1, "need at least one shard");
  PSS_REQUIRE(options_.drain_batch >= 1, "drain_batch must be positive");
  shards_.reserve(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i)
    shards_.push_back(std::make_unique<Shard>(options_));
  for (auto& shard : shards_)
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
}

StreamEngine::~StreamEngine() { stop(); }

void StreamEngine::wake(Shard& shard) {
  // Dekker-style handshake with the worker's sleep path: the ring push
  // (seq_cst fence below) and the worker's sleeping-flag store are ordered
  // so that either we observe sleeping == true and notify, or the worker's
  // post-flag emptiness recheck observes our push — never neither.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (shard.sleeping.load(std::memory_order_relaxed)) {
    std::lock_guard lock(shard.wake_mutex);
    shard.wake_cv.notify_one();
  }
}

bool StreamEngine::enqueue(std::size_t shard_index, ShardOp op) {
  PSS_REQUIRE(!finished_, "engine already finished");
  Shard& shard = *shards_[shard_index];
  if (!shard.queue.try_push(op)) {
    if (options_.backpressure == Backpressure::kReject) {
      shard.queue_rejects.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    PSS_REQUIRE(!paused_.load(std::memory_order_relaxed),
                "blocking push on a paused engine would deadlock");
    shard.full_waits.fetch_add(1, std::memory_order_relaxed);
    // Timed retry instead of a wake-perfect protocol: this is the
    // backpressure slow path, and a bounded poll makes a missed producer
    // wake impossible by construction.
    while (!shard.queue.try_push(op)) {
      std::unique_lock lock(shard.stats_mutex);
      shard.drained_cv.wait_for(lock, std::chrono::microseconds(100));
    }
  }
  shard.enqueued.fetch_add(1, std::memory_order_relaxed);
  wake(shard);
  return true;
}

bool StreamEngine::open(StreamId id) {
  return enqueue(router_.shard_of(id),
                 ShardOp{ShardOp::Kind::kOpen, id, 0.0, {}});
}

bool StreamEngine::feed(StreamId id, const model::Job& job) {
  return enqueue(router_.shard_of(id),
                 ShardOp{ShardOp::Kind::kArrival, id, 0.0, job});
}

bool StreamEngine::advance(StreamId id, double t) {
  return enqueue(router_.shard_of(id),
                 ShardOp{ShardOp::Kind::kAdvance, id, t, {}});
}

bool StreamEngine::close_stream(StreamId id) {
  return enqueue(router_.shard_of(id),
                 ShardOp{ShardOp::Kind::kClose, id, 0.0, {}});
}

void StreamEngine::resume() {
  paused_.store(false, std::memory_order_release);
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->wake_mutex);
    shard->wake_cv.notify_one();
  }
}

void StreamEngine::drain() {
  PSS_REQUIRE(!paused_.load(std::memory_order_relaxed),
              "draining a paused engine would deadlock");
  for (auto& shard : shards_) {
    const long long target = shard->enqueued.load(std::memory_order_relaxed);
    std::unique_lock lock(shard->stats_mutex);
    shard->drained_cv.wait(
        lock, [&] { return shard->published.processed >= target; });
  }
}

void StreamEngine::stop() {
  if (finished_) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->wake_mutex);
    shard->wake_cv.notify_one();
  }
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
  finished_ = true;
}

namespace {
// "PSSCKPT1" as a little-endian u64 — version byte last.
constexpr std::uint64_t kCheckpointMagic = 0x3154504B43535350ull;
}  // namespace

void StreamEngine::checkpoint(std::ostream& os) {
  PSS_REQUIRE(!finished_, "engine already finished");
  // After drain() every worker has applied all ops it will ever see until
  // the next enqueue, and a worker facing an empty ring never touches its
  // session table — so the tables are quiescent for the reads below. The
  // stats-mutex handshake inside drain() ordered the workers' session
  // writes before them.
  drain();
  io::write_u64(os, kCheckpointMagic);
  io::write_u64(os, options_.num_shards);
  io::write_i64(os, options_.machine.num_processors);
  io::write_f64(os, options_.machine.alpha);
  io::write_u8(os, options_.scheduler.delta.has_value() ? 1 : 0);
  io::write_f64(os, options_.scheduler.delta.value_or(0.0));
  io::write_u8(os, options_.scheduler.incremental ? 1 : 0);
  io::write_u8(os, options_.scheduler.indexed ? 1 : 0);
  io::write_u8(os, options_.scheduler.windowed ? 1 : 0);
  io::write_u8(os, options_.scheduler.lazy ? 1 : 0);
  io::write_u8(os, options_.record_decisions ? 1 : 0);
  for (auto& shard : shards_) {
    ShardSnapshot p;
    {
      std::lock_guard lock(shard->stats_mutex);
      p = shard->published;
    }
    io::write_i64(os, shard->enqueued.load(std::memory_order_relaxed));
    io::write_i64(os, shard->queue_rejects.load(std::memory_order_relaxed));
    io::write_i64(os, shard->full_waits.load(std::memory_order_relaxed));
    io::write_i64(os, p.processed);
    io::write_i64(os, p.batches);
    io::write_i64(os, p.op_errors);
    io::write_i64(os, p.arrivals);
    io::write_i64(os, p.accepted);
    io::write_i64(os, p.rejected);
    io::write_f64(os, p.decision_energy);
    io::write_i64(os, p.closed_streams);
    io::write_f64(os, p.closed_energy);
    io::save_counters(os, p.counters);
    shard->sessions.checkpoint(os);
  }
}

void StreamEngine::restore(std::istream& is) {
  PSS_REQUIRE(!finished_, "engine already finished");
  for (auto& shard : shards_) {
    PSS_REQUIRE(shard->enqueued.load(std::memory_order_relaxed) == 0,
                "restore target engine must be fresh");
  }
  PSS_REQUIRE(io::read_u64(is) == kCheckpointMagic,
              "not a PSS checkpoint (bad magic)");
  PSS_REQUIRE(io::read_u64(is) == options_.num_shards,
              "checkpoint shard count mismatch");
  PSS_REQUIRE(io::read_i64(is) == options_.machine.num_processors &&
                  io::read_f64(is) == options_.machine.alpha,
              "checkpoint machine mismatch");
  const bool has_delta = io::read_u8(is) != 0;
  const double delta = io::read_f64(is);
  PSS_REQUIRE(has_delta == options_.scheduler.delta.has_value() &&
                  delta == options_.scheduler.delta.value_or(0.0),
              "checkpoint delta mismatch");
  PSS_REQUIRE((io::read_u8(is) != 0) == options_.scheduler.incremental &&
                  (io::read_u8(is) != 0) == options_.scheduler.indexed &&
                  (io::read_u8(is) != 0) == options_.scheduler.windowed &&
                  (io::read_u8(is) != 0) == options_.scheduler.lazy &&
                  (io::read_u8(is) != 0) == options_.record_decisions,
              "checkpoint mode flags mismatch");
  for (auto& shard : shards_) {
    const long long enqueued = io::read_i64(is);
    shard->queue_rejects.store(io::read_i64(is), std::memory_order_relaxed);
    shard->full_waits.store(io::read_i64(is), std::memory_order_relaxed);
    ShardSnapshot p;
    p.processed = io::read_i64(is);
    p.batches = io::read_i64(is);
    p.op_errors = io::read_i64(is);
    p.arrivals = io::read_i64(is);
    p.accepted = io::read_i64(is);
    p.rejected = io::read_i64(is);
    p.decision_energy = io::read_f64(is);
    p.closed_streams = io::read_i64(is);
    p.closed_energy = io::read_f64(is);
    io::load_counters(is, p.counters);
    // The worker only touches its session table when the ring hands it an
    // op; this engine has accepted no traffic, so the table is ours to
    // fill. The ring's release/acquire pair on the next enqueue publishes
    // these writes to the worker.
    shard->sessions.restore(is);
    p.open_streams = shard->sessions.num_open();
    {
      std::lock_guard lock(shard->stats_mutex);
      shard->published = p;
    }
    // drain() waits for processed >= enqueued; the restored tallies must
    // keep that invariant (they were drained-equal at checkpoint time).
    shard->enqueued.store(enqueued, std::memory_order_relaxed);
  }
}

std::vector<StreamResult> StreamEngine::finish() {
  if (!finished_) {
    if (paused_.load(std::memory_order_relaxed)) resume();
    drain();
    stop();
  }
  std::vector<StreamResult> results;
  for (auto& shard : shards_) {
    auto completed = shard->sessions.take_completed();
    results.insert(results.end(), std::make_move_iterator(completed.begin()),
                   std::make_move_iterator(completed.end()));
  }
  std::sort(results.begin(), results.end(),
            [](const StreamResult& a, const StreamResult& b) {
              return a.id < b.id;
            });
  return results;
}

EngineSnapshot StreamEngine::snapshot() const {
  EngineSnapshot snap;
  snap.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardSnapshot s;
    {
      std::lock_guard lock(shard->stats_mutex);
      s = shard->published;
    }
    s.queue_depth = shard->queue.size();
    s.enqueued = shard->enqueued.load(std::memory_order_relaxed);
    s.queue_rejects = shard->queue_rejects.load(std::memory_order_relaxed);
    s.full_waits = shard->full_waits.load(std::memory_order_relaxed);
    snap.arrivals += s.arrivals;
    snap.accepted += s.accepted;
    snap.rejected += s.rejected;
    snap.queue_rejects += s.queue_rejects;
    snap.full_waits += s.full_waits;
    snap.op_errors += s.op_errors;
    snap.queue_depth += s.queue_depth;
    snap.open_streams += s.open_streams;
    snap.closed_streams += s.closed_streams;
    snap.decision_energy += s.decision_energy;
    snap.closed_energy += s.closed_energy;
    snap.counters += s.counters;
    snap.shards.push_back(std::move(s));
  }
  return snap;
}

void StreamEngine::worker_loop(Shard& shard) {
  std::vector<ShardOp> batch;
  batch.reserve(options_.drain_batch);
  for (;;) {
    if (paused_.load(std::memory_order_acquire) &&
        !stopping_.load(std::memory_order_acquire)) {
      std::unique_lock lock(shard.wake_mutex);
      shard.wake_cv.wait(lock, [&] {
        return !paused_.load(std::memory_order_relaxed) ||
               stopping_.load(std::memory_order_relaxed);
      });
    }

    batch.clear();
    shard.queue.pop_batch(batch, options_.drain_batch);
    if (batch.empty()) {
      // On stop, exit only once the ring is fully drained: every op
      // accepted before stop() is applied (correct shutdown).
      if (stopping_.load(std::memory_order_acquire)) return;
      // Sleep handshake, consumer half (see wake()): flag, fence, recheck.
      shard.sleeping.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (shard.queue.empty() && !stopping_.load(std::memory_order_relaxed) &&
          !paused_.load(std::memory_order_relaxed)) {
        std::unique_lock lock(shard.wake_mutex);
        shard.wake_cv.wait(lock, [&] {
          return !shard.queue.empty() ||
                 stopping_.load(std::memory_order_relaxed) ||
                 paused_.load(std::memory_order_relaxed);
        });
      }
      shard.sleeping.store(false, std::memory_order_relaxed);
      continue;
    }

    // Apply the batch without holding any lock; fold tallies locally.
    long long arrivals = 0, accepted = 0, rejected = 0;
    long long closed = 0, op_errors = 0;
    double decision_energy = 0.0, closed_energy = 0.0;
    core::PdCounters closed_counters;
    for (ShardOp& op : batch) {
      // A precondition violation (a client feeding a malformed job or
      // breaking release order) poisons that op only: the engine counts
      // it and keeps serving every other stream.
      try {
        switch (op.kind) {
          case ShardOp::Kind::kOpen:
            shard.sessions.open(op.stream);
            break;
          case ShardOp::Kind::kArrival: {
            const core::ArrivalDecision decision =
                shard.sessions.feed(op.stream, op.job);
            ++arrivals;
            if (decision.accepted) {
              ++accepted;
              decision_energy += decision.planned_energy;
            } else {
              ++rejected;
            }
            break;
          }
          case ShardOp::Kind::kAdvance:
            // The table contains malformed advances itself (returns false
            // instead of throwing), so a bad clock never reaches the
            // batch-level catch — but it still counts as an op error.
            if (!shard.sessions.advance(op.stream, op.time)) ++op_errors;
            break;
          case ShardOp::Kind::kClose: {
            const StreamResult* result = shard.sessions.close(op.stream);
            if (result != nullptr) {
              ++closed;
              closed_energy += result->planned_energy;
              closed_counters += result->counters;
            }
            break;
          }
        }
      } catch (const std::exception&) {
        ++op_errors;
      }
    }

    // One stats lock per batch — the amortization the ring exists for.
    {
      std::lock_guard lock(shard.stats_mutex);
      ShardSnapshot& p = shard.published;
      p.processed += static_cast<long long>(batch.size());
      p.batches += 1;
      p.op_errors += op_errors;
      p.arrivals += arrivals;
      p.accepted += accepted;
      p.rejected += rejected;
      p.decision_energy += decision_energy;
      p.closed_streams += closed;
      p.closed_energy += closed_energy;
      p.counters += closed_counters;
      p.open_streams = shard.sessions.num_open();
    }
    shard.drained_cv.notify_all();  // drain() waiters and blocked producers
  }
}

}  // namespace pss::stream
