#include "stream/session_table.hpp"

namespace pss::stream {

core::PdScheduler& SessionTable::session(StreamId id) {
  auto it = open_.find(id);
  if (it != open_.end()) return *it->second;
  std::unique_ptr<core::PdScheduler> scheduler;
  if (!free_.empty()) {
    scheduler = std::move(free_.back());
    free_.pop_back();
  } else {
    scheduler = std::make_unique<core::PdScheduler>(machine_, options_);
  }
  return *open_.emplace(id, std::move(scheduler)).first->second;
}

void SessionTable::open(StreamId id) { session(id); }

core::ArrivalDecision SessionTable::feed(StreamId id, const model::Job& job) {
  return session(id).on_arrival(job);
}

void SessionTable::advance(StreamId id, double t) { session(id).advance_to(t); }

const StreamResult* SessionTable::close(StreamId id) {
  auto it = open_.find(id);
  if (it == open_.end()) return nullptr;
  core::PdScheduler& scheduler = *it->second;
  StreamResult result;
  result.id = id;
  result.counters = scheduler.counters();
  result.planned_energy = scheduler.planned_energy();
  if (record_decisions_) result.decisions = scheduler.decisions();
  completed_.push_back(std::move(result));
  ++num_closed_;
  scheduler.reset();
  free_.push_back(std::move(it->second));
  open_.erase(it);
  return &completed_.back();
}

}  // namespace pss::stream
