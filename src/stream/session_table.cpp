#include "stream/session_table.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/state_io.hpp"
#include "util/assert.hpp"

namespace pss::stream {

std::unique_ptr<core::PdScheduler> SessionTable::recycled_scheduler() {
  if (!free_.empty()) {
    std::unique_ptr<core::PdScheduler> scheduler = std::move(free_.back());
    free_.pop_back();
    return scheduler;
  }
  return std::make_unique<core::PdScheduler>(machine_, options_);
}

void SessionTable::evict_to_budget() {
  if (!store_) return;
  while (open_.size() > spill_options_.max_resident && open_.size() > 1) {
    const StreamId victim = lru_.back();  // coldest resident
    auto it = open_.find(victim);
    PSS_CHECK(it != open_.end(), "lru/table desync");
    std::ostringstream blob;
    io::save_scheduler(blob, *it->second.scheduler);
    try {
      store_->put(victim, std::move(blob).str());
    } catch (const std::exception&) {
      // Retries are already spent (the store backs off internally). Failing
      // to spill must not lose the session: keep it resident — over budget
      // but correct — and try again on the next eviction pressure.
      // (util::InjectedCrash is not a std::exception and propagates.)
      ++spill_errors_;
      return;
    }
    ++spills_;
    it->second.scheduler->reset();
    free_.push_back(std::move(it->second.scheduler));
    lru_.pop_back();
    open_.erase(it);
  }
}

core::PdScheduler& SessionTable::session(StreamId id) {
  auto it = open_.find(id);
  if (it != open_.end()) {
    // Touch: move to the LRU front so the budget evicts someone colder.
    if (store_ && it->second.lru != lru_.begin())
      lru_.splice(lru_.begin(), lru_, it->second.lru);
    return *it->second.scheduler;
  }
  std::unique_ptr<core::PdScheduler> scheduler = recycled_scheduler();
  std::string blob;
  bool restored = false;
  try {
    restored = store_ && store_->take(id, blob);
  } catch (const std::exception&) {
    // Restore failure is NOT containable here: serving this stream from a
    // fresh scheduler would silently fork its history. Count it and let
    // the caller's per-op containment shed the op instead.
    ++spill_errors_;
    free_.push_back(std::move(scheduler));
    throw;
  }
  if (restored) {
    std::istringstream in(std::move(blob));
    io::load_scheduler(in, *scheduler);
    ++spill_restores_;
  }
  lru_.push_front(id);
  core::PdScheduler& ref =
      *open_.emplace(id, Resident{std::move(scheduler), lru_.begin()})
           .first->second.scheduler;
  evict_to_budget();
  return ref;
}

void SessionTable::open(StreamId id) { session(id); }

core::ArrivalDecision SessionTable::feed(StreamId id, const model::Job& job) {
  return session(id).on_arrival(job);
}

bool SessionTable::advance(StreamId id, double t) {
  core::PdScheduler& scheduler = session(id);
  try {
    scheduler.advance_to(t, /*compact=*/true);
  } catch (const std::invalid_argument&) {
    return false;  // precondition violation: this op only; session serves on
  }
  return true;
}

const StreamResult* SessionTable::close(StreamId id) {
  auto it = open_.find(id);
  if (it == open_.end()) {
    if (!store_ || !store_->contains(id)) return nullptr;
    session(id);  // restore the spilled session so it can be finalized
    it = open_.find(id);
    PSS_CHECK(it != open_.end(), "restored session missing");
  }
  core::PdScheduler& scheduler = *it->second.scheduler;
  StreamResult result;
  result.id = id;
  result.counters = scheduler.counters();
  result.planned_energy = scheduler.planned_energy();
  if (record_decisions_) result.decisions = scheduler.decisions();
  completed_.push_back(std::move(result));
  ++num_closed_;
  scheduler.reset();
  free_.push_back(std::move(it->second.scheduler));
  lru_.erase(it->second.lru);
  open_.erase(it);
  return &completed_.back();
}

void SessionTable::checkpoint(std::ostream& os) const {
  // One sorted id walk over residents and spilled sessions together. A
  // spilled blob *is* a save_scheduler image, and identical state serializes
  // to identical bytes, so writing stored blobs verbatim keeps the format —
  // and the checkpoint bytes — independent of what happened to be resident.
  std::vector<StreamId> ids;
  ids.reserve(num_open());
  for (const auto& [id, resident] : open_) ids.push_back(id);
  if (store_)
    for (std::uint64_t key : store_->keys()) ids.push_back(key);
  std::sort(ids.begin(), ids.end());
  io::write_u64(os, ids.size());
  for (StreamId id : ids) {
    io::write_u64(os, id);
    auto it = open_.find(id);
    if (it != open_.end()) {
      io::save_scheduler(os, *it->second.scheduler);
    } else {
      std::string blob;
      PSS_CHECK(store_ && store_->peek(id, blob), "spilled blob missing");
      os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    }
  }
  io::write_i64(os, num_closed_);
  io::write_u64(os, completed_.size());
  for (const StreamResult& r : completed_) {
    io::write_u64(os, r.id);
    io::save_counters(os, r.counters);
    io::write_f64(os, r.planned_energy);
    io::write_u64(os, r.decisions.size());
    for (const auto& [job, d] : r.decisions) {
      io::write_i64(os, job);
      io::write_u8(os, d.accepted ? 1 : 0);
      io::write_f64(os, d.speed);
      io::write_f64(os, d.lambda);
      io::write_f64(os, d.planned_energy);
    }
  }
}

namespace {
// Count sanity ahead of any allocation (a corrupt stream must not turn a
// garbage u64 into a giant resize).
std::uint64_t read_count(std::istream& is) {
  const std::uint64_t n = io::read_u64(is);
  PSS_REQUIRE(n <= (std::uint64_t(1) << 40), "corrupt checkpoint: count");
  return n;
}
}  // namespace

void SessionTable::restore(std::istream& is) {
  PSS_REQUIRE(open_.empty() && num_spilled() == 0 && completed_.empty() &&
                  num_closed_ == 0,
              "restore target table must be empty");
  const std::uint64_t n_open = read_count(is);
  for (std::uint64_t i = 0; i < n_open; ++i) {
    const auto id = static_cast<StreamId>(io::read_u64(is));
    // session() may evict an earlier restored session to honor the budget;
    // the load lands in the fresh resident either way.
    io::load_scheduler(is, session(id));
  }
  num_closed_ = io::read_i64(is);
  const std::uint64_t n_completed = read_count(is);
  for (std::uint64_t i = 0; i < n_completed; ++i) {
    StreamResult r;
    r.id = static_cast<StreamId>(io::read_u64(is));
    io::load_counters(is, r.counters);
    r.planned_energy = io::read_f64(is);
    r.decisions.resize(read_count(is));
    for (auto& [job, d] : r.decisions) {
      job = static_cast<model::JobId>(io::read_i64(is));
      d.accepted = io::read_u8(is) != 0;
      d.speed = io::read_f64(is);
      d.lambda = io::read_f64(is);
      d.planned_energy = io::read_f64(is);
    }
    completed_.push_back(std::move(r));
  }
}

}  // namespace pss::stream
