#include "stream/session_table.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "io/state_io.hpp"
#include "util/assert.hpp"

namespace pss::stream {

core::PdScheduler& SessionTable::session(StreamId id) {
  auto it = open_.find(id);
  if (it != open_.end()) return *it->second;
  std::unique_ptr<core::PdScheduler> scheduler;
  if (!free_.empty()) {
    scheduler = std::move(free_.back());
    free_.pop_back();
  } else {
    scheduler = std::make_unique<core::PdScheduler>(machine_, options_);
  }
  return *open_.emplace(id, std::move(scheduler)).first->second;
}

void SessionTable::open(StreamId id) { session(id); }

core::ArrivalDecision SessionTable::feed(StreamId id, const model::Job& job) {
  return session(id).on_arrival(job);
}

bool SessionTable::advance(StreamId id, double t) {
  core::PdScheduler& scheduler = session(id);
  try {
    scheduler.advance_to(t, /*compact=*/true);
  } catch (const std::invalid_argument&) {
    return false;  // precondition violation: this op only; session serves on
  }
  return true;
}

const StreamResult* SessionTable::close(StreamId id) {
  auto it = open_.find(id);
  if (it == open_.end()) return nullptr;
  core::PdScheduler& scheduler = *it->second;
  StreamResult result;
  result.id = id;
  result.counters = scheduler.counters();
  result.planned_energy = scheduler.planned_energy();
  if (record_decisions_) result.decisions = scheduler.decisions();
  completed_.push_back(std::move(result));
  ++num_closed_;
  scheduler.reset();
  free_.push_back(std::move(it->second));
  open_.erase(it);
  return &completed_.back();
}

void SessionTable::checkpoint(std::ostream& os) const {
  std::vector<StreamId> ids;
  ids.reserve(open_.size());
  for (const auto& [id, scheduler] : open_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  io::write_u64(os, ids.size());
  for (StreamId id : ids) {
    io::write_u64(os, id);
    io::save_scheduler(os, *open_.at(id));
  }
  io::write_i64(os, num_closed_);
  io::write_u64(os, completed_.size());
  for (const StreamResult& r : completed_) {
    io::write_u64(os, r.id);
    io::save_counters(os, r.counters);
    io::write_f64(os, r.planned_energy);
    io::write_u64(os, r.decisions.size());
    for (const auto& [job, d] : r.decisions) {
      io::write_i64(os, job);
      io::write_u8(os, d.accepted ? 1 : 0);
      io::write_f64(os, d.speed);
      io::write_f64(os, d.lambda);
      io::write_f64(os, d.planned_energy);
    }
  }
}

namespace {
// Count sanity ahead of any allocation (a corrupt stream must not turn a
// garbage u64 into a giant resize).
std::uint64_t read_count(std::istream& is) {
  const std::uint64_t n = io::read_u64(is);
  PSS_REQUIRE(n <= (std::uint64_t(1) << 40), "corrupt checkpoint: count");
  return n;
}
}  // namespace

void SessionTable::restore(std::istream& is) {
  PSS_REQUIRE(open_.empty() && completed_.empty() && num_closed_ == 0,
              "restore target table must be empty");
  const std::uint64_t n_open = read_count(is);
  for (std::uint64_t i = 0; i < n_open; ++i) {
    const auto id = static_cast<StreamId>(io::read_u64(is));
    io::load_scheduler(is, session(id));
  }
  num_closed_ = io::read_i64(is);
  const std::uint64_t n_completed = read_count(is);
  for (std::uint64_t i = 0; i < n_completed; ++i) {
    StreamResult r;
    r.id = static_cast<StreamId>(io::read_u64(is));
    io::load_counters(is, r.counters);
    r.planned_energy = io::read_f64(is);
    r.decisions.resize(read_count(is));
    for (auto& [job, d] : r.decisions) {
      job = static_cast<model::JobId>(io::read_i64(is));
      d.accepted = io::read_u8(is) != 0;
      d.speed = io::read_f64(is);
      d.lambda = io::read_f64(is);
      d.planned_energy = io::read_f64(is);
    }
    completed_.push_back(std::move(r));
  }
}

}  // namespace pss::stream
