#include "core/pd_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "chen/realize.hpp"
#include "convex/solver.hpp"
#include "convex/water_fill.hpp"
#include "core/rejection.hpp"
#include "model/power.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace pss::core {

PdScheduler::PdScheduler(model::Machine machine, PdOptions options)
    : machine_(machine),
      delta_(options.delta.value_or(optimal_delta(machine.alpha))) {
  PSS_REQUIRE(machine_.num_processors >= 1, "need at least one processor");
  PSS_REQUIRE(machine_.alpha > 1.0, "alpha must exceed 1");
  PSS_REQUIRE(delta_ > 0.0, "delta must be positive");
}

void PdScheduler::ensure_boundary(double t) {
  if (partition_.has_boundary(t)) return;
  if (partition_.boundaries().size() < 2) {
    partition_.insert_boundary(t);
    if (partition_.boundaries().size() == 2) assignment_.append_interval();
    return;
  }
  const double lo = partition_.boundaries().front();
  const double hi = partition_.boundaries().back();
  const std::size_t split = partition_.insert_boundary(t);
  if (split != std::size_t(-1)) {
    // A real interior split: committed loads split proportionally
    // (Section 3's online refinement).
    const double frac = (t - partition_.start(split)) /
                        (partition_.end(split + 1) - partition_.start(split));
    assignment_.split_interval(split, frac);
    ++counters_.interval_splits;
  } else if (t > hi) {
    assignment_.append_interval();
    ++counters_.horizon_extensions;
  } else if (t < lo) {
    ++counters_.horizon_extensions;
    // Prepend: rebuild with one extra leading interval.
    model::WorkAssignment extended(assignment_.num_intervals() + 1);
    for (std::size_t k = 0; k < assignment_.num_intervals(); ++k)
      for (const model::Load& l : assignment_.loads(k))
        extended.set_load(k + 1, l.job, l.amount);
    assignment_ = std::move(extended);
  }
}

ArrivalDecision PdScheduler::on_arrival(const model::Job& job) {
  PSS_REQUIRE(job.deadline > job.release, "bad job window");
  PSS_REQUIRE(job.work > 0.0, "job work must be positive");
  PSS_REQUIRE(!first_arrival_ ? job.release >= last_release_ - 1e-12 : true,
              "jobs must arrive in nondecreasing release order");
  last_release_ = std::max(last_release_, job.release);

  ensure_boundary(job.release);
  first_arrival_ = false;
  ensure_boundary(job.deadline);
  PSS_CHECK(assignment_.num_intervals() == partition_.num_intervals(),
            "assignment drifted from partition");

  const double alpha = machine_.alpha;
  const model::PowerFunction power(alpha);
  const auto window = partition_.job_range(job);
  const double s_reject = rejection_speed(job.value, job.work, alpha, delta_);

  ArrivalDecision decision;
  auto placement =
      convex::water_fill(assignment_, partition_, machine_.num_processors,
                         window, job.work, s_reject, job.id);
  if (!placement.has_value()) {
    // Line 12(b): the marginal hit v_j first; reset loads, fix lambda = v.
    decision.accepted = false;
    decision.speed = s_reject;
    decision.lambda = job.value;
    decision.planned_energy = 0.0;
  } else {
    // Line 11(a): full workload placed at uniform own-speed s*.
    decision.accepted = true;
    decision.speed = placement->speed;
    decision.lambda = delta_ * job.work * power.derivative(placement->speed);
    decision.planned_energy =
        job.work * util::pos_pow(placement->speed, alpha - 1.0);
    for (std::size_t i = 0; i < window.size(); ++i)
      assignment_.set_load(window.first + i, job.id, placement->amounts[i]);
  }
  ++counters_.arrivals;
  (decision.accepted ? counters_.accepted : counters_.rejected) += 1;
  counters_.max_intervals =
      std::max(counters_.max_intervals, partition_.num_intervals());
  counters_.max_window = std::max(counters_.max_window, window.size());
  decisions_.push_back({job.id, decision});
  return decision;
}

double PdScheduler::planned_energy() const {
  return convex::assignment_energy(assignment_, partition_,
                                   machine_.num_processors, machine_.alpha);
}

model::Schedule PdScheduler::final_schedule() const {
  model::Schedule schedule = chen::realize_assignment(
      assignment_, partition_, machine_.num_processors);
  for (const auto& [id, decision] : decisions_)
    if (!decision.accepted) schedule.mark_rejected(id);
  return schedule;
}

}  // namespace pss::core
