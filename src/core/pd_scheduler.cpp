#include "core/pd_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "chen/interval_schedule.hpp"
#include "chen/realize.hpp"
#include "convex/solver.hpp"
#include "convex/water_fill.hpp"
#include "core/rejection.hpp"
#include "model/power.hpp"
#include "util/assert.hpp"
#include "util/fault.hpp"
#include "util/math.hpp"

namespace pss::core {

PdScheduler::PdScheduler(model::Machine machine, PdOptions options)
    : machine_(machine),
      delta_(options.delta.value_or(optimal_delta(machine.alpha))),
      record_decisions_(options.record_decisions),
      adaptive_(options.adaptive),
      base_options_(options),
      tuner_(options.tuner) {
  PSS_REQUIRE(machine_.num_processors >= 1, "need at least one processor");
  PSS_REQUIRE(machine_.alpha > 1.0, "alpha must exceed 1");
  PSS_REQUIRE(delta_ > 0.0, "delta must be positive");
  base_options_.windowed = options.windowed && options.indexed;
  base_options_.lazy = options.lazy && options.indexed;
  apply_start_flags();
}

void PdScheduler::apply_start_flags() {
  incremental_ = base_options_.incremental;
  // An adaptive session starts on the cheap contiguous backend and lets
  // the tuner flip it up to the configured cube position; a static one
  // starts where it was configured.
  indexed_ = adaptive_ ? false : base_options_.indexed;
  windowed_ = adaptive_ ? false : base_options_.windowed;
  lazy_ = adaptive_ ? false : base_options_.lazy;
  state_.indexed = indexed_;
  cache_.enable_lazy(lazy_);
}

void PdScheduler::ensure_boundary(double t) {
  // The cache mirrors structural refinements even on the reference path so
  // the two modes share one state-transition code path.
  state_.ensure_boundary(t, &cache_);
}

void PdScheduler::advance_to(double t, bool compact) {
  PSS_REQUIRE(std::isfinite(t), "advance target must be finite");
  PSS_REQUIRE(first_arrival_ ||
                  t >= last_release_ - util::clock_tol(last_release_),
              "advance_to must move the clock forward");
  // Structure-free on purpose: a pure clock advance inserts no boundary
  // and dirties no cache, so heartbeat ticks cannot grow the partition.
  first_arrival_ = false;
  last_release_ = std::max(last_release_, t);
  if (compact && indexed_) compact_before(t - util::clock_tol(t));
  if (adaptive_) maybe_tune();
}

void PdScheduler::maybe_tune() {
  if (!tuner_.tick()) return;
  ++counters_.tuner_evals;
  const TunerVerdict verdict = tuner_.evaluate(
      counters_, state_.num_intervals(), indexed_, windowed_, lazy_,
      base_options_.indexed, base_options_.windowed, base_options_.lazy);
  if (!verdict.migrate) return;
  PdOptions target = base_options_;
  target.indexed = verdict.indexed;
  target.windowed = verdict.windowed;
  target.lazy = verdict.lazy;
  migrate_to(target);
}

bool PdScheduler::migrate_to(const PdOptions& target) {
  const bool to_incremental = target.incremental;
  const bool to_indexed = target.indexed;
  const bool to_windowed = target.windowed && target.indexed;
  const bool to_lazy = target.lazy && target.indexed;
  if (to_incremental == incremental_ && to_indexed == indexed_ &&
      to_windowed == windowed_ && to_lazy == lazy_)
    return false;

  // Pending lazy annotations are semantic state. A lazy-keeping migration
  // carries them verbatim (the checkpoint discipline below); a
  // lazy-dropping one must land them as real loads first, because the
  // capture inside state_.migrate_to reads only committed loads.
  const bool carry_lazy = lazy_ && to_lazy;
  if (lazy_ && !carry_lazy) {
    try {
      // Canary site: tests/test_policy_tuner.cpp arms this with a
      // swallowed error to model a migration that forgets to materialize
      // — the differential harness must then report a bitwise mismatch.
      PSS_FAULT_POINT("migrate.materialize");
      cache_.lazy_flush(state_.store);
      counters_.lazy_materializations = cache_.lazy_stats().materializations;
    } catch (const util::InjectedError&) {
      // Deliberately swallowed: the injected skipped-materialization bug.
    }
  }
  CurveCache::LazyState carried;
  if (carry_lazy) carried = cache_.lazy_state();

  const bool need_accepted_rebuild = to_windowed && !windowed_;
  if (!to_windowed) accepted_ids_.clear();

  // Cold rebuild through the live refinement path — the state_io restore
  // discipline — under a cache freshly reset into the target mode. The
  // certification caches (curves, segment tree, grid classification)
  // restart cold exactly as they do after a checkpoint restore; only
  // cost, never a decision, depends on them.
  cache_.reset(0);
  cache_.enable_lazy(to_lazy);
  state_.migrate_to(to_indexed, &cache_);
  incremental_ = to_incremental;
  indexed_ = to_indexed;
  windowed_ = to_windowed;
  lazy_ = to_lazy;

  if (carry_lazy)
    cache_.restore_lazy_state(carried);
  else if (to_lazy)
    seed_lazy_extent();
  if (need_accepted_rebuild) rebuild_accepted_ids(carried);
  ++counters_.backend_flips;
  return true;
}

void PdScheduler::seed_lazy_extent() {
  const model::IntervalStore& store = state_.store;
  for (model::IntervalStore::Handle h = store.front_handle();
       h != model::IntervalStore::kNoHandle; h = store.next_handle(h)) {
    if (store.loads(h).empty()) continue;
    cache_.note_commit_extent(store.front_boundary(), store.back_boundary());
    return;
  }
}

void PdScheduler::rebuild_accepted_ids(const CurveCache::LazyState& carried) {
  const model::IntervalStore& store = state_.store;
  for (model::IntervalStore::Handle h = store.front_handle();
       h != model::IntervalStore::kNoHandle; h = store.next_handle(h)) {
    const double end = store.end_of(h);
    for (const model::Load& l : store.loads(h)) {
      auto [it, fresh] = accepted_ids_.try_emplace(l.job, end);
      if (!fresh) it->second = std::max(it->second, end);
    }
  }
  // Carried annotations hold accepts whose loads are not materialized yet;
  // their range end is the accepted window's deadline.
  for (const auto& p : carried.pending) {
    auto [it, fresh] = accepted_ids_.try_emplace(p.job, p.t1);
    if (!fresh) it->second = std::max(it->second, p.t1);
  }
}

void PdScheduler::compact_before(double frontier) {
  model::IntervalStore& store = state_.store;
  if (store.num_intervals() == 0) return;
  // Fast exit for the common per-tick case: nothing retires.
  if (store.end_of(store.front_handle()) > frontier) return;
  // Lazy annotations reaching behind the frontier must land as real loads
  // first, so the retired-energy walk below sees them and the split
  // arithmetic never needs a retired interval again.
  if (lazy_) cache_.lazy_materialize_range(store, -util::kInf, frontier);
  // Retired prefix energy, accumulated left to right with the same
  // skip-empty order assignment_energy uses: planned_energy() continuing
  // from this accumulator reproduces the uncompacted sum bitwise.
  for (model::IntervalStore::Handle h = store.front_handle();
       h != model::IntervalStore::kNoHandle && store.end_of(h) <= frontier;
       h = store.next_handle(h)) {
    if (store.loads(h).empty()) continue;
    retired_energy_ +=
        chen::interval_energy(store.loads(h), machine_.num_processors,
                              store.length_of(h), machine_.alpha);
  }
  freed_scratch_.clear();
  const std::size_t retired = store.compact_before(frontier, freed_scratch_);
  if (retired == 0) return;
  cache_.on_compacted(store, frontier, freed_scratch_);
  ++counters_.compactions;
  counters_.compacted_intervals += static_cast<long long>(retired);
  // An accepted id whose whole window is behind the frontier holds no load
  // in any live interval, so the all-loads screen is valid for it again;
  // dropping the record bounds the map by the live window.
  if (windowed_) {
    for (auto it = accepted_ids_.begin(); it != accepted_ids_.end();) {
      if (it->second <= frontier)
        it = accepted_ids_.erase(it);
      else
        ++it;
    }
  }
}

void PdScheduler::reset() {
  state_ = OnlineState{};
  // A migrated session reverts to its configured cube position (and an
  // adaptive one restarts contiguous with a fresh tuner): the next stream
  // served by this recycled object must not inherit the previous stream's
  // flip history.
  tuner_ = PolicyTuner(base_options_.tuner);
  apply_start_flags();
  // reset() drops all lazy state (pending annotations, extent, grid) but
  // keeps the lazy mode flag — a recycled session must neither replay
  // stale water levels nor silently change engine variant.
  cache_.reset(0);
  accepted_ids_.clear();
  decisions_.clear();
  freed_scratch_.clear();
  counters_ = PdCounters{};
  retired_energy_ = 0.0;
  last_release_ = -1.0;
  first_arrival_ = true;
}

ArrivalDecision PdScheduler::on_arrival(const model::Job& job) {
  PSS_REQUIRE(job.deadline > job.release, "bad job window");
  PSS_REQUIRE(job.work > 0.0, "job work must be positive");
  PSS_REQUIRE(!first_arrival_
                  ? job.release >=
                        last_release_ - util::clock_tol(last_release_)
                  : true,
              "jobs must arrive in nondecreasing release order");
  // Per-arrival timing feeds the tuner's optional cost model only; with
  // cost_model off (the default) the clock is never read and the flip
  // trajectory is a pure function of the op stream.
  const bool timed = adaptive_ && base_options_.tuner.cost_model;
  std::chrono::steady_clock::time_point op_start;
  if (timed) op_start = std::chrono::steady_clock::now();
  last_release_ = std::max(last_release_, job.release);

  ensure_boundary(job.release);
  first_arrival_ = false;
  ensure_boundary(job.deadline);

  const double alpha = machine_.alpha;
  const model::PowerFunction power(alpha);
  const auto window = indexed_
                          ? state_.store.range(job.release, job.deadline)
                          : state_.partition.job_range(job);
  const double s_reject = rejection_speed(job.value, job.work, alpha, delta_);

  // Windowed screen: certified capacity bounds from the segment tree. A
  // certified rejection skips the O(window) scan entirely; anything
  // inconclusive (or a re-arriving accepted id, whose committed loads the
  // all-loads bounds cannot exclude) falls through to the exact reference
  // arithmetic below, so the decision stream is bitwise independent of
  // `windowed`.
  // s_reject > 0 also keeps a zero-value job (s_reject == 0, finite) off
  // the screen, preserving the exact path's behavior for it verbatim.
  bool screened_reject = false;
  if (windowed_ && std::isfinite(s_reject) && s_reject > 0.0 &&
      accepted_ids_.find(job.id) == accepted_ids_.end()) {
    const convex::CapacityBounds bounds = cache_.window_capacity_bounds(
        state_.store, machine_.num_processors, window, s_reject);
    if (bounds.hi < job.work) {
      screened_reject = true;
      ++counters_.window_prunes;
    } else {
      ++counters_.window_exact;
    }
  } else if (windowed_) {
    ++counters_.window_exact;
  }

  ArrivalDecision decision;
  bool lazy_done = false;
  if (!screened_reject && lazy_) {
    double unit = 0.0;
    if (s_reject > 0.0 &&
        cache_.lazy_virgin_uniform(state_.store, job.release, job.deadline,
                                   window.size(), &unit)) {
      // Certified closed-form replay: the window is provably `size` empty
      // intervals of bitwise-equal length, so the exact engines' entire
      // arithmetic collapses to water_fill_uniform. An accept becomes one
      // O(log n) range annotation instead of a per-interval commit loop.
      const convex::UniformFill fill = convex::water_fill_uniform(
          unit, window.size(), machine_.num_processors, job.work, s_reject);
      ++counters_.lazy_fast_path;
      if (fill.accepted) {
        decision.accepted = true;
        decision.speed = fill.level;
        decision.lambda =
            delta_ * job.work * power.derivative(fill.level);
        decision.planned_energy =
            job.work * util::pos_pow(fill.level, alpha - 1.0);
        cache_.lazy_commit(job.release, job.deadline, job.id, fill.amount,
                           fill.first_amount);
        if (windowed_) {
          double& dl = accepted_ids_[job.id];
          dl = std::max(dl, job.deadline);
        }
      } else {
        decision.accepted = false;
        decision.speed = s_reject;
        decision.lambda = job.value;
        decision.planned_energy = 0.0;
      }
      lazy_done = true;
    } else {
      // Exact fallback is about to read the window's loads: expand any
      // annotation intersecting it so it sees the eager state.
      cache_.lazy_materialize_range(state_.store, job.release, job.deadline);
    }
  }
  std::optional<convex::Placement> placement;
  if (lazy_done) {
    placement = std::nullopt;  // unused; decision already made above
  } else if (screened_reject) {
    placement = std::nullopt;
  } else if (indexed_ && incremental_) {
    const auto curves = cache_.curves_for(
        state_.store, machine_.num_processors, window, job.id);
    placement = convex::water_fill_over_curves(curves, job.work, s_reject);
  } else if (indexed_) {
    placement = convex::water_fill(state_.store, machine_.num_processors,
                                   window, job.work, s_reject, job.id);
  } else if (incremental_) {
    const auto curves =
        cache_.curves_for(state_.assignment, state_.partition,
                          machine_.num_processors, window, job.id);
    placement = convex::water_fill_over_curves(curves, job.work, s_reject);
  } else {
    placement = convex::water_fill(state_.assignment, state_.partition,
                                   machine_.num_processors, window, job.work,
                                   s_reject, job.id);
  }
  if (lazy_done) {
    // Decision fields were filled by the closed-form replay.
  } else if (!placement.has_value()) {
    // Line 12(b): the marginal hit v_j first; reset loads, fix lambda = v.
    decision.accepted = false;
    decision.speed = s_reject;
    decision.lambda = job.value;
    decision.planned_energy = 0.0;
  } else {
    // Line 11(a): full workload placed at uniform own-speed s*.
    decision.accepted = true;
    decision.speed = placement->speed;
    decision.lambda = delta_ * job.work * power.derivative(placement->speed);
    decision.planned_energy =
        job.work * util::pos_pow(placement->speed, alpha - 1.0);
    if (indexed_) {
      model::IntervalStore::Handle h = state_.store.handle_at(window.first);
      for (std::size_t i = 0; i < window.size(); ++i) {
        state_.store.set_load(h, job.id, placement->amounts[i]);
        if (windowed_) cache_.note_load_changed(h);
        h = state_.store.next_handle(h);
      }
      if (windowed_) {
        double& dl = accepted_ids_[job.id];
        dl = std::max(dl, job.deadline);
      }
      if (lazy_) cache_.note_commit_extent(job.release, job.deadline);
    } else {
      for (std::size_t i = 0; i < window.size(); ++i)
        state_.assignment.set_load(window.first + i, job.id,
                                   placement->amounts[i]);
    }
  }
  ++counters_.arrivals;
  (decision.accepted ? counters_.accepted : counters_.rejected) += 1;
  counters_.interval_splits = state_.interval_splits;
  counters_.horizon_extensions = state_.horizon_extensions;
  counters_.curve_cache_hits = cache_.stats().hits;
  counters_.curve_cache_rebuilds = cache_.stats().rebuilds;
  counters_.lazy_commits = cache_.lazy_stats().commits;
  counters_.lazy_materializations = cache_.lazy_stats().materializations;
  counters_.max_intervals =
      std::max(counters_.max_intervals, state_.num_intervals());
  counters_.max_window = std::max(counters_.max_window, window.size());
  if (record_decisions_) decisions_.push_back({job.id, decision});
  if (timed)
    tuner_.observe_cost(
        indexed_, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - op_start)
                      .count());
  return decision;
}

void PdScheduler::flush_lazy() const {
  if (!lazy_) return;
  auto* self = const_cast<PdScheduler*>(this);
  self->cache_.lazy_flush(self->state_.store);
  self->counters_.lazy_materializations =
      self->cache_.lazy_stats().materializations;
}

double PdScheduler::planned_energy() const {
  // Indexed backend: materialize once and reuse the contiguous evaluator —
  // cold path, and the snapshot loads are bitwise-identical to the
  // contiguous backend's, so the energy is too.
  if (indexed_) {
    flush_lazy();
    return convex::assignment_energy(
        state_.store.snapshot_assignment(), state_.store.snapshot_partition(),
        machine_.num_processors, machine_.alpha, retired_energy_);
  }
  // retired_energy_ can be nonzero here too: a session compacted on the
  // indexed backend may have since migrated to the contiguous one.
  return convex::assignment_energy(state_.assignment, state_.partition,
                                   machine_.num_processors, machine_.alpha,
                                   retired_energy_);
}

model::Schedule PdScheduler::final_schedule() const {
  flush_lazy();
  model::Schedule schedule =
      indexed_ ? chen::realize_assignment(state_.store.snapshot_assignment(),
                                          state_.store.snapshot_partition(),
                                          machine_.num_processors)
               : chen::realize_assignment(state_.assignment, state_.partition,
                                          machine_.num_processors);
  for (const auto& [id, decision] : decisions_)
    if (!decision.accepted) schedule.mark_rejected(id);
  return schedule;
}

}  // namespace pss::core
