#include "core/curve_cache.hpp"

#include <cmath>

#include "chen/insertion_curve.hpp"
#include "util/assert.hpp"

namespace pss::core {

void CurveCache::reset(std::size_t num_intervals) {
  entries_.assign(num_intervals, Entry{});
  handle_entries_.clear();
  scratch_.clear();
  out_.clear();
  tree_.clear();
  stats_ = Stats{};
  // Lazy state goes too (a recycled scheduler must not replay stale
  // levels); the enable flag itself is the scheduler's mode and survives.
  boundary_was_new_ = false;
  pending_.clear();
  extent_set_ = false;
  extent_lo_ = extent_hi_ = 0.0;
  grid_unit_ = 0.0;
  grid_dead_ = false;
  grid_early_.clear();
  offgrid_.clear();
  lazy_stats_ = LazyStats{};
  recycled_cursor_ = 0;
}

void CurveCache::sync_recycled(const model::IntervalStore& store) {
  const auto& log = store.recycled_births();
  for (; recycled_cursor_ < log.size(); ++recycled_cursor_) {
    const model::IntervalStore::Handle h = log[recycled_cursor_];
    // Handles at or above the synced watermark are still covered by the
    // tree's ordinary prefix absorption; dead (re-retired) or
    // already-present ones need nothing.
    if (std::size_t(h) >= tree_.synced_handles()) continue;
    if (!store.is_live(h) || tree_.contains(h)) continue;
    tree_.absorb_recycled(h, store.start_of(h));
  }
}

void CurveCache::on_compacted(
    model::IntervalStore& store, double frontier,
    const std::vector<model::IntervalStore::Handle>& freed) {
  for (const model::IntervalStore::Handle h : freed) {
    if (std::size_t(h) < handle_entries_.size()) handle_entries_[h] = Entry{};
    tree_.erase(h);
  }
  // Off-grid records behind the frontier are unreachable: every future
  // window starts at or after it, so lazy_virgin_uniform can never probe
  // them again. (Dropping them is conservative-neutral — the records only
  // ever veto the fast path.)
  offgrid_.erase(offgrid_.begin(), offgrid_.lower_bound(frontier));
  // Reconcile rebirths now so the log can be truncated; between
  // compactions the windowed query path drains it incrementally.
  sync_recycled(store);
  store.clear_recycled_births();
  recycled_cursor_ = 0;
}

CurveCache::LazyState CurveCache::lazy_state() const {
  LazyState s;
  s.pending.reserve(pending_.size());
  for (const auto& [t0, p] : pending_)
    s.pending.push_back({t0, p.t1, p.job, p.amount, p.first_amount});
  s.extent_set = extent_set_;
  s.extent_lo = extent_lo_;
  s.extent_hi = extent_hi_;
  s.grid_unit = grid_unit_;
  s.grid_dead = grid_dead_;
  s.grid_early = grid_early_;
  s.offgrid.assign(offgrid_.begin(), offgrid_.end());
  s.stats = lazy_stats_;
  return s;
}

void CurveCache::restore_lazy_state(const LazyState& s) {
  pending_.clear();
  for (const LazyState::PendingRange& p : s.pending)
    pending_.emplace(p.t0, Pending{p.t1, p.job, p.amount, p.first_amount});
  boundary_was_new_ = false;  // handshake flag never spans an operation
  extent_set_ = s.extent_set;
  extent_lo_ = s.extent_lo;
  extent_hi_ = s.extent_hi;
  grid_unit_ = s.grid_unit;
  grid_dead_ = s.grid_dead;
  grid_early_ = s.grid_early;
  offgrid_ = std::set<double>(s.offgrid.begin(), s.offgrid.end());
  lazy_stats_ = s.stats;
}

namespace {

/// Positive, finite power of two (mantissa exactly 0.5 under frexp):
/// multiples k*g and consecutive differences of such g are exact.
bool is_pow2(double d) {
  if (!(d > 0.0) || !std::isfinite(d)) return false;
  int exp = 0;
  return std::frexp(d, &exp) == 0.5;
}

}  // namespace

void CurveCache::before_boundary(model::IntervalStore& store, double t) {
  if (!lazy_enabled_) return;
  boundary_was_new_ = !store.has_boundary(t);
  if (!boundary_was_new_ || pending_.empty()) return;
  // A new boundary strictly inside a pending range is about to split one
  // of its intervals: expand the annotation first, so the proportional
  // load division sees exactly the loads the eager engine would.
  auto it = pending_.upper_bound(t);
  if (it == pending_.begin()) return;
  --it;
  if (it->first < t && t < it->second.t1) materialize(store, it);
}

void CurveCache::after_boundary(const model::IntervalStore& store, double t) {
  if (!lazy_enabled_ || !boundary_was_new_) return;
  boundary_was_new_ = false;
  observe_boundary(store, t);
}

void CurveCache::observe_boundary(const model::IntervalStore& store,
                                  double t) {
  if (grid_dead_) return;
  if (store.num_boundaries() < 2) {
    grid_early_.push_back(t);
    return;
  }
  // Gap to t's nearest neighboring boundary.
  const double front = store.front_boundary();
  const double back = store.back_boundary();
  double gap;
  if (t == front) {
    gap = store.end_of(store.handle_at(0)) - t;
  } else if (t == back) {
    gap = t - store.start_of(store.handle_at(store.num_intervals() - 1));
  } else {
    const std::size_t k = store.interval_of(t);  // interval starting at t
    gap = std::min(t - store.start_of(store.handle_at(k - 1)),
                   store.end_of(store.handle_at(k)) - t);
  }
  if (is_pow2(gap)) {
    if (grid_unit_ == 0.0) {
      grid_unit_ = gap;
      for (double early : grid_early_) classify_boundary(early);
      grid_early_.clear();
    } else if (gap < grid_unit_) {
      // Finer power-of-two unit: every on-grid point stays on-grid; stale
      // off-grid records only make the fast path miss, never misfire.
      grid_unit_ = gap;
    }
    classify_boundary(t);
  } else if (grid_unit_ != 0.0) {
    classify_boundary(t);
  } else {
    grid_early_.push_back(t);
    if (grid_early_.size() > 64) {
      // No plausible unit in sight; give up on the fast path for this run.
      grid_dead_ = true;
      grid_early_.clear();
      offgrid_.clear();
    }
  }
}

void CurveCache::classify_boundary(double t) {
  // Division by a power of two is exact, so t is on-grid iff t/unit is an
  // integer small enough that k*unit is exactly representable.
  const double k = t / grid_unit_;
  if (!(std::abs(k) <= 4.5e15) || k != std::floor(k)) offgrid_.insert(t);
}

bool CurveCache::lazy_virgin_uniform(const model::IntervalStore& store,
                                     double t0, double t1, std::size_t count,
                                     double* unit) {
  if (!lazy_enabled_ || grid_dead_ || grid_unit_ == 0.0) return false;
  if (extent_set_ && !(t1 <= extent_lo_ || t0 >= extent_hi_)) return false;
  auto it = offgrid_.lower_bound(t0);
  if (it != offgrid_.end() && *it <= t1) return false;
  // All boundaries in [t0, t1] are exact grid multiples; `count` intervals
  // across a span of count*unit forces every length to be exactly one
  // grid step — bitwise, because consecutive multiples of a power of two
  // subtract exactly.
  if ((t1 - t0) / grid_unit_ != double(count)) return false;
  (void)store;
  *unit = grid_unit_;
  return true;
}

void CurveCache::lazy_commit(double t0, double t1, model::JobId job,
                             double amount, double first_amount) {
  PSS_CHECK(!lazy_pending_overlap(t0, t1),
            "lazy commit on a non-virgin range");
  pending_.emplace(t0, Pending{t1, job, amount, first_amount});
  note_commit_extent(t0, t1);
  ++lazy_stats_.commits;
}

void CurveCache::note_commit_extent(double t0, double t1) {
  if (!lazy_enabled_) return;
  if (!extent_set_) {
    extent_set_ = true;
    extent_lo_ = t0;
    extent_hi_ = t1;
    return;
  }
  extent_lo_ = std::min(extent_lo_, t0);
  extent_hi_ = std::max(extent_hi_, t1);
}

bool CurveCache::lazy_pending_overlap(double t0, double t1) const {
  if (pending_.empty()) return false;
  auto it = pending_.upper_bound(t0);
  if (it != pending_.begin() && std::prev(it)->second.t1 > t0) return true;
  return it != pending_.end() && it->first < t1;
}

void CurveCache::materialize(model::IntervalStore& store,
                             std::map<double, Pending>::iterator it) {
  const double t0 = it->first;
  const Pending p = it->second;
  pending_.erase(it);
  // The range's boundaries still exist (boundaries are never removed) and
  // none was inserted inside it while pending (before_boundary expands
  // first), so this walk visits exactly the commit-time intervals and
  // replays the eager engine's set_load loop.
  const model::IntervalRange window = store.range(t0, p.t1);
  model::IntervalStore::Handle h = store.handle_at(window.first);
  for (std::size_t i = 0; i < window.size(); ++i) {
    store.set_load(h, p.job, i == 0 ? p.first_amount : p.amount);
    tree_.mark_dirty(h);
    h = store.next_handle(h);
  }
  ++lazy_stats_.materializations;
}

void CurveCache::lazy_materialize_range(model::IntervalStore& store,
                                        double t0, double t1) {
  while (true) {
    auto it = pending_.upper_bound(t0);
    if (it != pending_.begin() && std::prev(it)->second.t1 > t0) {
      materialize(store, std::prev(it));
      continue;
    }
    if (it != pending_.end() && it->first < t1) {
      materialize(store, it);
      continue;
    }
    break;
  }
}

void CurveCache::lazy_flush(model::IntervalStore& store) {
  while (!pending_.empty()) materialize(store, pending_.begin());
}

const util::PiecewiseLinear& CurveCache::validated_curve(
    const model::IntervalStore& store, int num_processors,
    model::IntervalStore::Handle h) {
  if (handle_entries_.size() < store.handle_space())
    handle_entries_.resize(store.handle_space());
  Entry& entry = handle_entries_[h];
  const double length = store.length_of(h);
  if (entry.built && entry.epoch == store.epoch(h) &&
      entry.length == length) {
    ++stats_.hits;
  } else {
    entry.curve =
        chen::insertion_curve(store.loads(h), -1, num_processors, length);
    entry.epoch = store.epoch(h);
    entry.length = length;
    entry.built = true;
    ++stats_.rebuilds;
  }
  return entry.curve;
}

convex::CapacityBounds CurveCache::window_capacity_bounds(
    const model::IntervalStore& store, int num_processors,
    model::IntervalRange window, double speed) {
  sync_recycled(store);
  tree_store_ = &store;
  tree_procs_ = num_processors;
  return tree_.window_capacity_bounds(
      store, window, speed,
      [this](model::IntervalStore::Handle h) -> const util::PiecewiseLinear& {
        return validated_curve(*tree_store_, tree_procs_, h);
      });
}

void CurveCache::on_split(std::size_t k) {
  PSS_REQUIRE(k < entries_.size(), "split index out of range");
  // Both halves changed length and loads; start them unbuilt.
  entries_[k] = Entry{};
  entries_.insert(entries_.begin() + std::ptrdiff_t(k) + 1, Entry{});
}

void CurveCache::on_append() { entries_.emplace_back(); }

void CurveCache::on_prepend() {
  entries_.insert(entries_.begin(), Entry{});
}

std::span<const util::PiecewiseLinear* const> CurveCache::curves_for(
    const model::WorkAssignment& assignment,
    const model::TimePartition& partition, int num_processors,
    model::IntervalRange window, model::JobId ignore_job) {
  PSS_REQUIRE(entries_.size() == assignment.num_intervals(),
              "curve cache drifted from assignment");
  PSS_REQUIRE(window.last <= entries_.size(), "window exceeds cache");
  PSS_REQUIRE(window.first < window.last, "empty placement window");

  scratch_.clear();
  out_.clear();
  for (std::size_t k = window.first; k < window.last; ++k) {
    const double length = partition.length(k);
    if (assignment.load_of(k, ignore_job) != 0.0) {
      // The excluded job already owns load here (re-placement): this curve
      // is not the all-loads curve, so build it aside and skip the cache.
      // Rare path — grow scratch up front so the pointers below stay put.
      if (scratch_.capacity() < window.size())
        scratch_.reserve(window.size());
      scratch_.push_back(chen::insertion_curve(
          assignment.loads(k), ignore_job, num_processors, length));
      out_.push_back(&scratch_.back());
      ++stats_.rebuilds;
      continue;
    }
    Entry& entry = entries_[k];
    if (entry.built && entry.epoch == assignment.epoch(k) &&
        entry.length == length) {
      ++stats_.hits;
    } else {
      entry.curve = chen::insertion_curve(assignment.loads(k), ignore_job,
                                          num_processors, length);
      entry.epoch = assignment.epoch(k);
      entry.length = length;
      entry.built = true;
      ++stats_.rebuilds;
    }
    out_.push_back(&entry.curve);
  }
  return out_;
}

std::span<const util::PiecewiseLinear* const> CurveCache::curves_for(
    const model::IntervalStore& store, int num_processors,
    model::IntervalRange window, model::JobId ignore_job) {
  PSS_REQUIRE(window.last <= store.num_intervals(), "window exceeds store");
  PSS_REQUIRE(window.first < window.last, "empty placement window");
  if (lazy_enabled_ && !pending_.empty()) {
    // Contract: exact decision arithmetic must never read a range with an
    // unmaterialized annotation — the cached/served curves would describe
    // loads that are not there yet. A trip here is a missed
    // materialization hook (see tests/test_lazy_levels.cpp's canary).
    const double t0 = store.start_of(store.handle_at(window.first));
    const double t1 = window.last == store.num_intervals()
                          ? store.back_boundary()
                          : store.start_of(store.handle_at(window.last));
    PSS_CHECK(!lazy_pending_overlap(t0, t1),
              "curves_for over an unmaterialized lazy range");
  }
  if (handle_entries_.size() < store.handle_space())
    handle_entries_.resize(store.handle_space());

  scratch_.clear();
  out_.clear();
  model::IntervalStore::Handle h = store.handle_at(window.first);
  for (std::size_t i = 0; i < window.size(); ++i) {
    const model::IntervalStore::Handle next = store.next_handle(h);
    const double length =
        (next == model::IntervalStore::kNoHandle ? store.back_boundary()
                                                 : store.start_of(next)) -
        store.start_of(h);
    if (store.load_of(h, ignore_job) != 0.0) {
      // Same tainted-curve path as the contiguous variant.
      if (scratch_.capacity() < window.size())
        scratch_.reserve(window.size());
      scratch_.push_back(chen::insertion_curve(store.loads(h), ignore_job,
                                               num_processors, length));
      out_.push_back(&scratch_.back());
      ++stats_.rebuilds;
    } else {
      Entry& entry = handle_entries_[h];
      if (entry.built && entry.epoch == store.epoch(h) &&
          entry.length == length) {
        ++stats_.hits;
      } else {
        entry.curve = chen::insertion_curve(store.loads(h), ignore_job,
                                            num_processors, length);
        entry.epoch = store.epoch(h);
        entry.length = length;
        entry.built = true;
        ++stats_.rebuilds;
      }
      out_.push_back(&entry.curve);
    }
    h = next;
  }
  return out_;
}

}  // namespace pss::core
