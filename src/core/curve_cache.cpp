#include "core/curve_cache.hpp"

#include "chen/insertion_curve.hpp"
#include "util/assert.hpp"

namespace pss::core {

void CurveCache::reset(std::size_t num_intervals) {
  entries_.assign(num_intervals, Entry{});
  handle_entries_.clear();
  scratch_.clear();
  out_.clear();
  tree_.clear();
  stats_ = Stats{};
}

const util::PiecewiseLinear& CurveCache::validated_curve(
    const model::IntervalStore& store, int num_processors,
    model::IntervalStore::Handle h) {
  if (handle_entries_.size() < store.handle_space())
    handle_entries_.resize(store.handle_space());
  Entry& entry = handle_entries_[h];
  const double length = store.length_of(h);
  if (entry.built && entry.epoch == store.epoch(h) &&
      entry.length == length) {
    ++stats_.hits;
  } else {
    entry.curve =
        chen::insertion_curve(store.loads(h), -1, num_processors, length);
    entry.epoch = store.epoch(h);
    entry.length = length;
    entry.built = true;
    ++stats_.rebuilds;
  }
  return entry.curve;
}

convex::CapacityBounds CurveCache::window_capacity_bounds(
    const model::IntervalStore& store, int num_processors,
    model::IntervalRange window, double speed) {
  tree_store_ = &store;
  tree_procs_ = num_processors;
  return tree_.window_capacity_bounds(
      store, window, speed,
      [this](model::IntervalStore::Handle h) -> const util::PiecewiseLinear& {
        return validated_curve(*tree_store_, tree_procs_, h);
      });
}

void CurveCache::on_split(std::size_t k) {
  PSS_REQUIRE(k < entries_.size(), "split index out of range");
  // Both halves changed length and loads; start them unbuilt.
  entries_[k] = Entry{};
  entries_.insert(entries_.begin() + std::ptrdiff_t(k) + 1, Entry{});
}

void CurveCache::on_append() { entries_.emplace_back(); }

void CurveCache::on_prepend() {
  entries_.insert(entries_.begin(), Entry{});
}

std::span<const util::PiecewiseLinear* const> CurveCache::curves_for(
    const model::WorkAssignment& assignment,
    const model::TimePartition& partition, int num_processors,
    model::IntervalRange window, model::JobId ignore_job) {
  PSS_REQUIRE(entries_.size() == assignment.num_intervals(),
              "curve cache drifted from assignment");
  PSS_REQUIRE(window.last <= entries_.size(), "window exceeds cache");
  PSS_REQUIRE(window.first < window.last, "empty placement window");

  scratch_.clear();
  out_.clear();
  for (std::size_t k = window.first; k < window.last; ++k) {
    const double length = partition.length(k);
    if (assignment.load_of(k, ignore_job) != 0.0) {
      // The excluded job already owns load here (re-placement): this curve
      // is not the all-loads curve, so build it aside and skip the cache.
      // Rare path — grow scratch up front so the pointers below stay put.
      if (scratch_.capacity() < window.size())
        scratch_.reserve(window.size());
      scratch_.push_back(chen::insertion_curve(
          assignment.loads(k), ignore_job, num_processors, length));
      out_.push_back(&scratch_.back());
      ++stats_.rebuilds;
      continue;
    }
    Entry& entry = entries_[k];
    if (entry.built && entry.epoch == assignment.epoch(k) &&
        entry.length == length) {
      ++stats_.hits;
    } else {
      entry.curve = chen::insertion_curve(assignment.loads(k), ignore_job,
                                          num_processors, length);
      entry.epoch = assignment.epoch(k);
      entry.length = length;
      entry.built = true;
      ++stats_.rebuilds;
    }
    out_.push_back(&entry.curve);
  }
  return out_;
}

std::span<const util::PiecewiseLinear* const> CurveCache::curves_for(
    const model::IntervalStore& store, int num_processors,
    model::IntervalRange window, model::JobId ignore_job) {
  PSS_REQUIRE(window.last <= store.num_intervals(), "window exceeds store");
  PSS_REQUIRE(window.first < window.last, "empty placement window");
  if (handle_entries_.size() < store.handle_space())
    handle_entries_.resize(store.handle_space());

  scratch_.clear();
  out_.clear();
  model::IntervalStore::Handle h = store.handle_at(window.first);
  for (std::size_t i = 0; i < window.size(); ++i) {
    const model::IntervalStore::Handle next = store.next_handle(h);
    const double length =
        (next == model::IntervalStore::kNoHandle ? store.back_boundary()
                                                 : store.start_of(next)) -
        store.start_of(h);
    if (store.load_of(h, ignore_job) != 0.0) {
      // Same tainted-curve path as the contiguous variant.
      if (scratch_.capacity() < window.size())
        scratch_.reserve(window.size());
      scratch_.push_back(chen::insertion_curve(store.loads(h), ignore_job,
                                               num_processors, length));
      out_.push_back(&scratch_.back());
      ++stats_.rebuilds;
    } else {
      Entry& entry = handle_entries_[h];
      if (entry.built && entry.epoch == store.epoch(h) &&
          entry.length == length) {
        ++stats_.hits;
      } else {
        entry.curve = chen::insertion_curve(store.loads(h), ignore_job,
                                            num_processors, length);
        entry.epoch = store.epoch(h);
        entry.length = length;
        entry.built = true;
        ++stats_.rebuilds;
      }
      out_.push_back(&entry.curve);
    }
    h = next;
  }
  return out_;
}

}  // namespace pss::core
