#include "core/curve_cache.hpp"

#include "chen/insertion_curve.hpp"
#include "util/assert.hpp"

namespace pss::core {

void CurveCache::reset(std::size_t num_intervals) {
  entries_.assign(num_intervals, Entry{});
  scratch_.clear();
  out_.clear();
  stats_ = Stats{};
}

void CurveCache::on_split(std::size_t k) {
  PSS_REQUIRE(k < entries_.size(), "split index out of range");
  // Both halves changed length and loads; start them unbuilt.
  entries_[k] = Entry{};
  entries_.insert(entries_.begin() + std::ptrdiff_t(k) + 1, Entry{});
}

void CurveCache::on_append() { entries_.emplace_back(); }

void CurveCache::on_prepend() {
  entries_.insert(entries_.begin(), Entry{});
}

std::span<const util::PiecewiseLinear* const> CurveCache::curves_for(
    const model::WorkAssignment& assignment,
    const model::TimePartition& partition, int num_processors,
    model::IntervalRange window, model::JobId ignore_job) {
  PSS_REQUIRE(entries_.size() == assignment.num_intervals(),
              "curve cache drifted from assignment");
  PSS_REQUIRE(window.last <= entries_.size(), "window exceeds cache");
  PSS_REQUIRE(window.first < window.last, "empty placement window");

  scratch_.clear();
  out_.clear();
  for (std::size_t k = window.first; k < window.last; ++k) {
    const double length = partition.length(k);
    if (assignment.load_of(k, ignore_job) != 0.0) {
      // The excluded job already owns load here (re-placement): this curve
      // is not the all-loads curve, so build it aside and skip the cache.
      // Rare path — grow scratch up front so the pointers below stay put.
      if (scratch_.capacity() < window.size())
        scratch_.reserve(window.size());
      scratch_.push_back(chen::insertion_curve(
          assignment.loads(k), ignore_job, num_processors, length));
      out_.push_back(&scratch_.back());
      ++stats_.rebuilds;
      continue;
    }
    Entry& entry = entries_[k];
    if (entry.built && entry.epoch == assignment.epoch(k) &&
        entry.length == length) {
      ++stats_.hits;
    } else {
      entry.curve = chen::insertion_curve(assignment.loads(k), ignore_job,
                                          num_processors, length);
      entry.epoch = assignment.epoch(k);
      entry.length = length;
      entry.built = true;
      ++stats_.rebuilds;
    }
    out_.push_back(&entry.curve);
  }
  return out_;
}

}  // namespace pss::core
