// Shared online state for arrival-driven schedulers: a time partition that
// refines as jobs reveal new boundaries, kept in lockstep with a work
// assignment whose committed loads split proportionally (Section 3,
// "Concerning the Time Partitioning"). Used by both the integral PD
// scheduler and the fractional variant.
#pragma once

#include <cstddef>

#include "core/curve_cache.hpp"
#include "model/time_partition.hpp"
#include "model/work_assignment.hpp"
#include "util/assert.hpp"

namespace pss::core {

struct OnlineState {
  model::TimePartition partition;
  model::WorkAssignment assignment;
  long long interval_splits = 0;
  long long horizon_extensions = 0;

  /// Makes t a boundary, splitting committed loads proportionally when t
  /// falls inside an existing interval. When a CurveCache is passed, the
  /// structural change is mirrored into it so cached insertion curves stay
  /// aligned with their intervals (set_load-level invalidation is handled
  /// by WorkAssignment epochs, not here).
  void ensure_boundary(double t, CurveCache* cache = nullptr) {
    if (partition.has_boundary(t)) return;
    if (partition.boundaries().size() < 2) {
      partition.insert_boundary(t);
      if (partition.boundaries().size() == 2) {
        assignment.append_interval();
        if (cache) cache->on_append();
      }
      return;
    }
    const double lo = partition.boundaries().front();
    const double hi = partition.boundaries().back();
    const std::size_t split = partition.insert_boundary(t);
    if (split != std::size_t(-1)) {
      const double frac =
          (t - partition.start(split)) /
          (partition.end(split + 1) - partition.start(split));
      assignment.split_interval(split, frac);
      if (cache) cache->on_split(split);
      ++interval_splits;
    } else if (t > hi) {
      assignment.append_interval();
      if (cache) cache->on_append();
      ++horizon_extensions;
    } else if (t < lo) {
      ++horizon_extensions;
      assignment.prepend_interval();
      if (cache) cache->on_prepend();
    }
    PSS_CHECK(assignment.num_intervals() == partition.num_intervals(),
              "assignment drifted from partition");
  }
};

}  // namespace pss::core
