// Shared online state for arrival-driven schedulers: a time partition that
// refines as jobs reveal new boundaries, kept in lockstep with a work
// assignment whose committed loads split proportionally (Section 3,
// "Concerning the Time Partitioning"). Used by both the integral PD
// scheduler and the fractional variant.
#pragma once

#include <cstddef>

#include "model/time_partition.hpp"
#include "model/work_assignment.hpp"
#include "util/assert.hpp"

namespace pss::core {

struct OnlineState {
  model::TimePartition partition;
  model::WorkAssignment assignment;
  long long interval_splits = 0;
  long long horizon_extensions = 0;

  /// Makes t a boundary, splitting committed loads proportionally when t
  /// falls inside an existing interval.
  void ensure_boundary(double t) {
    if (partition.has_boundary(t)) return;
    if (partition.boundaries().size() < 2) {
      partition.insert_boundary(t);
      if (partition.boundaries().size() == 2) assignment.append_interval();
      return;
    }
    const double lo = partition.boundaries().front();
    const double hi = partition.boundaries().back();
    const std::size_t split = partition.insert_boundary(t);
    if (split != std::size_t(-1)) {
      const double frac =
          (t - partition.start(split)) /
          (partition.end(split + 1) - partition.start(split));
      assignment.split_interval(split, frac);
      ++interval_splits;
    } else if (t > hi) {
      assignment.append_interval();
      ++horizon_extensions;
    } else if (t < lo) {
      ++horizon_extensions;
      model::WorkAssignment extended(assignment.num_intervals() + 1);
      for (std::size_t k = 0; k < assignment.num_intervals(); ++k)
        for (const model::Load& l : assignment.loads(k))
          extended.set_load(k + 1, l.job, l.amount);
      assignment = std::move(extended);
    }
    PSS_CHECK(assignment.num_intervals() == partition.num_intervals(),
              "assignment drifted from partition");
  }
};

}  // namespace pss::core
