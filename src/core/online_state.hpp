// Shared online state for arrival-driven schedulers: a time partition that
// refines as jobs reveal new boundaries, kept in lockstep with a work
// assignment whose committed loads split proportionally (Section 3,
// "Concerning the Time Partitioning"). Used by both the integral PD
// scheduler and the fractional variant.
//
// Two interchangeable backends hold the state:
//   * contiguous (indexed == false): TimePartition + WorkAssignment, the
//     reference representation. Every refinement shifts vector tails, so
//     ensure_boundary is O(n) — kept as the bitwise-identical baseline the
//     differential suite compares against.
//   * indexed (indexed == true): model::IntervalStore, an order-statistics
//     indexed store with stable interval handles and O(log n) refinement.
//     Caches keyed by handle need no structural mirroring at all — a split
//     allocates a fresh handle for the right half and bumps epochs, which
//     the epoch/length validation of CurveCache already detects.
//
// Select the backend before the first ensure_boundary. A live state can
// still change backend mid-run, but only through migrate_to below: the two
// backends are alternative owners of the same logical state, not mirrors
// of each other, so a switch is a capture-and-rebuild, never a flag flip.
#pragma once

#include <cstddef>
#include <vector>

#include "core/curve_cache.hpp"
#include "model/interval_store.hpp"
#include "model/time_partition.hpp"
#include "model/work_assignment.hpp"
#include "util/assert.hpp"

namespace pss::core {

struct OnlineState {
  bool indexed = false;  // backend selector; set before first use

  // Contiguous backend (live when !indexed).
  model::TimePartition partition;
  model::WorkAssignment assignment;
  // Indexed backend (live when indexed).
  model::IntervalStore store;

  long long interval_splits = 0;
  long long horizon_extensions = 0;

  /// Makes t a boundary, splitting committed loads proportionally when t
  /// falls inside an existing interval. When a CurveCache is passed on the
  /// contiguous backend, the structural change is mirrored into it so
  /// cached insertion curves stay aligned with their intervals
  /// (set_load-level invalidation is handled by WorkAssignment epochs, not
  /// here). The indexed backend ignores the cache argument: handle-keyed
  /// cache entries survive refinements by construction.
  void ensure_boundary(double t, CurveCache* cache = nullptr) {
    if (indexed) {
      // Lazy water-level hooks (no-ops unless the cache has lazy mode on):
      // before — materialize a pending annotation the new boundary would
      // split; after — classify the new boundary against the uniform grid.
      if (cache) cache->before_boundary(store, t);
      switch (store.ensure_boundary(t)) {
        case model::IntervalStore::Refinement::kSplit:
          ++interval_splits;
          break;
        case model::IntervalStore::Refinement::kAppend:
        case model::IntervalStore::Refinement::kPrepend:
          ++horizon_extensions;
          break;
        case model::IntervalStore::Refinement::kNoop:
        case model::IntervalStore::Refinement::kBootstrap:
          break;
      }
      if (cache) cache->after_boundary(store, t);
      return;
    }
    if (partition.has_boundary(t)) return;
    if (partition.boundaries().size() < 2) {
      partition.insert_boundary(t);
      if (partition.boundaries().size() == 2) {
        assignment.append_interval();
        if (cache) cache->on_append();
      }
      return;
    }
    const double lo = partition.boundaries().front();
    const double hi = partition.boundaries().back();
    const std::size_t split = partition.insert_boundary(t);
    if (split != std::size_t(-1)) {
      const double frac =
          (t - partition.start(split)) /
          (partition.end(split + 1) - partition.start(split));
      assignment.split_interval(split, frac);
      if (cache) cache->on_split(split);
      ++interval_splits;
    } else if (t > hi) {
      assignment.append_interval();
      if (cache) cache->on_append();
      ++horizon_extensions;
    } else if (t < lo) {
      ++horizon_extensions;
      assignment.prepend_interval();
      if (cache) cache->on_prepend();
    }
    PSS_CHECK(assignment.num_intervals() == partition.num_intervals(),
              "assignment drifted from partition");
  }

  [[nodiscard]] std::size_t num_intervals() const {
    return indexed ? store.num_intervals() : partition.num_intervals();
  }

  /// Rebuilds the state under `to_indexed` (which may equal the current
  /// backend — then this is a pure cold rebuild): captures the boundaries
  /// and per-interval loads, resets both representations, and replays the
  /// boundaries left to right through ensure_boundary — the io::state_io
  /// restore discipline — so the rebuilt structure is exactly what the
  /// online code would have built from scratch. interval_splits /
  /// horizon_extensions are preserved across the rebuild (the replay's own
  /// bumps are discarded). The caller owns the cache contract: pass the
  /// cache already reset to the target mode, and materialize (or capture)
  /// any pending lazy annotations first — the capture below reads only
  /// committed loads.
  void migrate_to(bool to_indexed, CurveCache* cache) {
    std::vector<double> bounds;
    std::vector<std::vector<model::Load>> loads;
    if (indexed) {
      const std::size_t nb = store.num_boundaries();
      bounds.reserve(nb);
      loads.reserve(store.num_intervals());
      if (nb > 0) {
        bounds.push_back(store.front_boundary());
        for (auto h = store.front_handle();
             h != model::IntervalStore::kNoHandle; h = store.next_handle(h)) {
          bounds.push_back(store.end_of(h));
          loads.push_back(store.loads(h));
        }
      }
    } else {
      bounds = partition.boundaries();
      loads.reserve(assignment.num_intervals());
      for (std::size_t k = 0; k < assignment.num_intervals(); ++k)
        loads.push_back(assignment.loads(k));
    }
    const long long splits = interval_splits;
    const long long extensions = horizon_extensions;
    partition = model::TimePartition{};
    assignment = model::WorkAssignment{};
    store = model::IntervalStore{};
    indexed = to_indexed;
    for (double b : bounds) ensure_boundary(b, cache);
    interval_splits = splits;
    horizon_extensions = extensions;
    PSS_CHECK(num_intervals() == loads.size(),
              "backend migration drifted from the captured partition");
    if (indexed) {
      auto h = store.front_handle();
      for (const auto& interval_loads : loads) {
        for (const model::Load& l : interval_loads)
          store.set_load(h, l.job, l.amount);
        h = store.next_handle(h);
      }
    } else {
      for (std::size_t k = 0; k < loads.size(); ++k)
        for (const model::Load& l : loads[k])
          assignment.set_load(k, l.job, l.amount);
    }
  }
};

}  // namespace pss::core
