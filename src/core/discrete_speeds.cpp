#include "core/discrete_speeds.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace pss::core {

SpeedLevels::SpeedLevels(std::vector<double> levels) : levels_(std::move(levels)) {
  PSS_REQUIRE(!levels_.empty(), "need at least one speed level");
  for (double s : levels_)
    PSS_REQUIRE(s > 0.0 && std::isfinite(s), "levels must be positive finite");
  std::sort(levels_.begin(), levels_.end());
  levels_.erase(std::unique(levels_.begin(), levels_.end()), levels_.end());
}

SpeedLevels SpeedLevels::geometric(double s_min, double s_max, int count) {
  PSS_REQUIRE(s_min > 0.0 && s_max > s_min, "need 0 < s_min < s_max");
  PSS_REQUIRE(count >= 2, "need at least two levels");
  std::vector<double> levels(static_cast<std::size_t>(count), 0.0);
  const double ratio = std::pow(s_max / s_min, 1.0 / (count - 1));
  double s = s_min;
  for (int i = 0; i < count; ++i) {
    levels[std::size_t(i)] = (i == count - 1) ? s_max : s;
    s *= ratio;
  }
  return SpeedLevels(std::move(levels));
}

SpeedLevels::Bracket SpeedLevels::bracket(double speed) const {
  PSS_REQUIRE(speed <= levels_.back() * (1.0 + 1e-12),
              "speed exceeds the fastest level");
  if (speed <= levels_.front()) return {levels_.front(), levels_.front()};
  auto it = std::lower_bound(levels_.begin(), levels_.end(), speed);
  if (it != levels_.end() && *it == speed) return {speed, speed};
  return {*(it - 1), *std::min(it, std::prev(levels_.end()))};
}

double SpeedLevels::worst_overhead(double alpha) const {
  double worst = 1.0;
  for (std::size_t i = 0; i + 1 < levels_.size(); ++i) {
    const double lo = levels_[i], hi = levels_[i + 1];
    // Chord of P over [lo, hi] vs the curve, maximized over the mixing
    // point by a fine scan (closed form exists but a scan is simpler and
    // this is setup-time only).
    for (int k = 1; k < 200; ++k) {
      const double s = lo + (hi - lo) * k / 200.0;
      const double t_hi = (s - lo) / (hi - lo);  // fraction at `hi`
      const double chord = (1.0 - t_hi) * util::pos_pow(lo, alpha) +
                           t_hi * util::pos_pow(hi, alpha);
      worst = std::max(worst, chord / util::pos_pow(s, alpha));
    }
  }
  return worst;
}

model::Schedule discretize_schedule(const model::Schedule& schedule,
                                    const SpeedLevels& levels) {
  model::Schedule result(schedule.num_processors());
  for (model::JobId id : schedule.rejected()) result.mark_rejected(id);
  for (int p = 0; p < schedule.num_processors(); ++p) {
    for (const model::Segment& seg : schedule.processor(p)) {
      const SpeedLevels::Bracket b = levels.bracket(seg.speed);
      const double duration = seg.duration();
      if (b.lo == b.hi || seg.speed <= b.lo) {
        // Exact level, or below the slowest level: run at `lo` just long
        // enough for the work, idle for the rest of the window.
        const double run = seg.work() / b.lo;
        PSS_CHECK(run <= duration * (1.0 + 1e-9),
                  "discretization would miss the window");
        result.add_segment(
            p, {seg.start, seg.start + std::min(run, duration), b.lo, seg.job});
        continue;
      }
      // Two-level emulation: hi first, then lo; durations preserve work.
      //   t_hi * hi + t_lo * lo = s * T,  t_hi + t_lo = T.
      const double t_hi = duration * (seg.speed - b.lo) / (b.hi - b.lo);
      const double t_lo = duration - t_hi;
      if (t_hi > 1e-15 * duration && seg.start + t_hi > seg.start)
        result.add_segment(p,
                           {seg.start, seg.start + t_hi, b.hi, seg.job});
      if (t_lo > 1e-15 * duration && seg.end > seg.start + t_hi)
        result.add_segment(p, {seg.start + t_hi, seg.end, b.lo, seg.job});
    }
  }
  result.normalize();
  return result;
}

}  // namespace pss::core
