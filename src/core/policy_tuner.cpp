#include "core/policy_tuner.hpp"

#include <algorithm>

#include "core/pd_scheduler.hpp"
#include "util/assert.hpp"

namespace pss::core {

bool PolicyTuner::tick() {
  PSS_REQUIRE(options_.eval_period >= 1, "eval_period must be positive");
  ++state_.advances;
  return state_.advances % options_.eval_period == 0;
}

void PolicyTuner::observe_cost(bool on_indexed, double seconds) {
  if (!options_.cost_model || seconds < 0.0) return;
  double& ewma = on_indexed ? state_.ewma_indexed : state_.ewma_contig;
  // First sample seeds the average; afterwards a mild 1/8 blend — slow
  // enough to ride out scheduler noise, fast enough to track a phase shift
  // within one feature-sample window.
  ewma = ewma == 0.0 ? seconds : ewma + (seconds - ewma) / 8.0;
}

TunerVerdict PolicyTuner::evaluate(const PdCounters& counters,
                                   std::size_t live_intervals,
                                   bool cur_indexed, bool cur_windowed,
                                   bool cur_lazy, bool ceil_indexed,
                                   bool ceil_windowed, bool ceil_lazy) {
  PSS_REQUIRE(options_.down_fraction > 0.0 && options_.down_fraction < 1.0,
              "down_fraction must lie in (0, 1)");
  double threshold = state_.threshold > 0.0
                         ? state_.threshold
                         : double(options_.indexed_threshold);
  if (options_.cost_model && state_.ewma_contig > 0.0 &&
      state_.ewma_indexed > 0.0) {
    // One multiplicative gradient step per evaluation: if the indexed
    // backend has been observed cheaper per arrival, flip earlier next
    // time (shrink the threshold); if dearer, later. The clamp keeps a
    // noisy EWMA from driving the threshold out of the useful range.
    threshold *= state_.ewma_indexed <= state_.ewma_contig
                     ? 1.0 - options_.cost_eta
                     : 1.0 + options_.cost_eta;
    threshold = std::clamp(threshold, double(options_.threshold_min),
                           double(options_.threshold_max));
  }
  state_.threshold = threshold;

  // Feature effectiveness, judged over the traffic since the last flip —
  // and only once a full sample window has accumulated, so a short burst
  // cannot condemn the screen on a handful of arrivals.
  const long long sampled = counters.arrivals - state_.mark_arrivals;
  if (cur_windowed && sampled >= options_.min_feature_samples) {
    const long long prunes =
        counters.window_prunes - state_.mark_window_prunes;
    const long long screened =
        prunes + (counters.window_exact - state_.mark_window_exact);
    if (screened >= options_.min_feature_samples &&
        double(prunes) < options_.min_prune_rate * double(screened))
      state_.window_dropped = true;
  }
  if (cur_lazy && sampled >= options_.min_feature_samples) {
    const long long fast = counters.lazy_fast_path - state_.mark_lazy_fast;
    if (double(fast) < options_.min_lazy_rate * double(sampled))
      state_.lazy_dropped = true;
  }

  // Backend, with the hysteresis band: up at the threshold, down only at
  // threshold * down_fraction — an interval count oscillating anywhere
  // inside the band flips at most once.
  bool want_indexed = cur_indexed;
  if (!cur_indexed && double(live_intervals) >= threshold)
    want_indexed = true;
  else if (cur_indexed &&
           double(live_intervals) <= threshold * options_.down_fraction)
    want_indexed = false;
  want_indexed = want_indexed && ceil_indexed;

  TunerVerdict verdict;
  verdict.indexed = want_indexed;
  verdict.windowed = want_indexed && ceil_windowed && !state_.window_dropped;
  verdict.lazy = want_indexed && ceil_lazy && !state_.lazy_dropped;
  verdict.migrate = verdict.indexed != cur_indexed ||
                    verdict.windowed != cur_windowed ||
                    verdict.lazy != cur_lazy;
  if (cur_indexed && !want_indexed) {
    // A fresh contiguous stint forgets the drop verdicts: the next up-flip
    // gets to retry the features against its own traffic.
    state_.window_dropped = false;
    state_.lazy_dropped = false;
  }
  if (verdict.migrate) {
    state_.mark_arrivals = counters.arrivals;
    state_.mark_window_prunes = counters.window_prunes;
    state_.mark_window_exact = counters.window_exact;
    state_.mark_lazy_fast = counters.lazy_fast_path;
  }
  return verdict;
}

}  // namespace pss::core
