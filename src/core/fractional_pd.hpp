// Fractional PD — the online algorithm the relaxed program (CP) suggests.
//
// The integral PD of Listing 1 makes an all-or-nothing call: if the window
// cannot absorb the whole workload below the rejection speed, the job is
// dropped and its full value lost. The convex relaxation (y in [0,1])
// instead permits partial service: place as much work as the window absorbs
// at marginal price up to v_j (the same water level s_rej as PD), and pay
// only the unserved fraction (1 - f_j) * v_j.
//
// This is the online counterpart of the per-job block step in
// convex::minimize_relaxed. Pricing matters: integral PD deliberately
// *overprices* energy (delta = alpha^(1-alpha) < 1 makes the priced
// marginal hit v while the true marginal energy is still v/delta > v) to
// hedge against future arrivals — correct for an all-or-nothing decision,
// but a guaranteed money-loser for marginal work. The fractional variant
// therefore defaults to true marginal-cost pricing, delta = 1: work is
// served exactly while its marginal energy cost is below the per-unit
// value, which makes each single arrival decision myopically optimal
// (matching minimize_relaxed's block step). Across a whole sequence the
// comparison with integral PD is empirical — served fractions occupy
// capacity integral PD would have kept free — and bench_tab_rejection
// quantifies it. The dual certificate applies unchanged: lambda_j = v_j
// for every partially served job, so g(lambda~) still lower-bounds the
// relaxed optimum (in the fractional-value cost model this targets).
#pragma once

#include <optional>
#include <vector>

#include "model/instance.hpp"
#include "model/schedule.hpp"
#include "model/time_partition.hpp"
#include "model/work_assignment.hpp"

namespace pss::core {

struct FractionalPdOptions {
  /// Pricing parameter; nullopt selects delta = 1 (true marginal-cost
  /// pricing — see the header comment for why this differs from PD).
  std::optional<double> delta;
  /// Run the online state on the stable-handle model::IntervalStore
  /// (O(log n) Section-3 refinements) instead of the contiguous reference
  /// backend. Identical arithmetic either way — the result is bitwise
  /// equal (tests/test_differential.cpp).
  bool indexed = true;
  /// Screen arrivals through the convex::CurveSegmentTree capacity bounds
  /// (indexed backend only; inert otherwise). Two certified shortcuts,
  /// both bitwise identical to the unscreened run: a window whose upper
  /// capacity bound is below the dust threshold is fully unserved without
  /// scanning it, and one whose lower bound covers the whole workload is
  /// fully served with target = work without computing the exact capacity.
  /// Partial service (the inconclusive band) always takes the exact scan.
  bool windowed = true;
  /// Lazy water-level commits (indexed backend only; inert otherwise).
  /// Same mechanism as PdOptions::lazy: a job whose window is a certified
  /// virgin uniform range is served through the closed-form replay
  /// (convex::water_fill_uniform / window_capacity_uniform) and committed
  /// as one range annotation. Because the *full-service* certificate
  /// (lo >= work) is unsound against stale bounds, pending annotations
  /// intersecting the window are materialized before the screen — the
  /// result stays bitwise identical to lazy=false.
  bool lazy = true;
};

struct FractionalPdResult {
  model::Schedule schedule;
  model::WorkAssignment assignment;
  model::TimePartition partition;
  std::vector<double> fraction;  // served fraction f_j per job id
  std::vector<double> lambda;    // dual variable per job id
  double energy = 0.0;
  double lost_value = 0.0;       // sum over jobs of (1 - f_j) * v_j
  double dual_lower_bound = 0.0; // g(lambda) — bound on the relaxed optimum
  long long window_prunes = 0;   // decisions certified by the segment tree
  long long window_exact = 0;    // windowed arrivals that scanned exactly
  long long lazy_commits = 0;           // jobs committed as annotations
  long long lazy_materializations = 0;  // annotations expanded into loads

  [[nodiscard]] double total_cost() const { return energy + lost_value; }
};

/// Runs fractional PD over the instance in release order.
[[nodiscard]] FractionalPdResult run_fractional_pd(
    const model::Instance& instance, FractionalPdOptions options = {});

}  // namespace pss::core
