// The PD rejection policy in closed form (Listing 1 line 12 + Section 3).
//
// PD stops raising a job's variables when the dual rate
//   lambda_{jk} = delta * dP_k/dx_{jk} = delta * w_j * P'(s)
// reaches the job's value v_j. Solving lambda = v for the own-speed s gives
// the *rejection speed*: a job is rejected iff its availability window
// cannot absorb w_j at own-speed <= s_reject, where
//   s_reject = ( v / (delta * alpha * w) )^(1/(alpha-1)).
// With the optimal delta = alpha^(1-alpha) this becomes
//   s_reject = alpha^((alpha-2)/(alpha-1)) * (v/w)^(1/(alpha-1)),
// exactly the admission threshold of Chan, Lam, and Li [10] — the paper
// notes this equivalence and tests verify it.
#pragma once

#include "util/assert.hpp"
#include "util/math.hpp"

namespace pss::core {

/// The paper's optimal choice of the PD parameter, delta = alpha^(1-alpha).
[[nodiscard]] inline double optimal_delta(double alpha) {
  PSS_REQUIRE(alpha > 1.0, "alpha must exceed 1");
  return std::pow(alpha, 1.0 - alpha);
}

/// Speed above which PD refuses to push a job's work (see header comment).
[[nodiscard]] inline double rejection_speed(double value, double work,
                                            double alpha, double delta) {
  PSS_REQUIRE(work > 0.0, "work must be positive");
  PSS_REQUIRE(delta > 0.0, "delta must be positive");
  if (!std::isfinite(value)) return util::kInf;
  return util::pos_pow(value / (delta * alpha * work), 1.0 / (alpha - 1.0));
}

/// Chan–Lam–Li admission threshold [10]: reject when the planned speed
/// exceeds alpha^((alpha-2)/(alpha-1)) * (v/w)^(1/(alpha-1)).
[[nodiscard]] inline double cll_threshold_speed(double value, double work,
                                                double alpha) {
  PSS_REQUIRE(work > 0.0, "work must be positive");
  if (!std::isfinite(value)) return util::kInf;
  return std::pow(alpha, (alpha - 2.0) / (alpha - 1.0)) *
         util::pos_pow(value / work, 1.0 / (alpha - 1.0));
}

}  // namespace pss::core
