// Per-interval insertion-curve cache for the incremental PD hot path.
//
// PD never redistributes committed load (the structural property behind
// Theorem 3), so the insertion curve z_k(s) of an atomic interval only
// changes when that interval's own loads change — an arrival dirties the
// few intervals it places work into and leaves every other curve intact.
// The cache keeps one built curve per interval and revalidates it against
// the per-interval epoch counter, so a stale entry is detected without any
// explicit invalidation call on the load path.
//
// Two keying schemes, matching the two OnlineState backends:
//   * position-keyed (contiguous backend): structural refinements of the
//     online partition shift interval indices; the owner mirrors them
//     through on_split / on_append / on_prepend so cached curves stay
//     aligned with their intervals. A prepend, in particular, keeps every
//     previously built curve valid — the entries shift with their epochs.
//     Each mirroring call is itself an O(n) vector shift.
//   * handle-keyed (model::IntervalStore backend): entries live in a slab
//     addressed by the store's stable handles, so no structural mirroring
//     exists at all. A split allocates a fresh handle (fresh, unbuilt
//     entry) for the right half and bumps the left half's epoch and
//     length, which the ordinary hit validation already catches — the
//     structural cost on the cache drops to O(1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "convex/curve_segment_tree.hpp"
#include "model/interval_store.hpp"
#include "model/time_partition.hpp"
#include "model/work_assignment.hpp"
#include "util/piecewise_linear.hpp"

namespace pss::core {

class CurveCache {
 public:
  struct Stats {
    long long hits = 0;      // curves served without rebuilding
    long long rebuilds = 0;  // curves (re)built from interval loads
  };

  /// Drops everything (both keying schemes) and resizes the position-keyed
  /// pool to `num_intervals` unbuilt slots.
  void reset(std::size_t num_intervals);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  // Structural mirroring of the online partition refinements — contiguous
  // backend only. Must be called in lockstep with the matching
  // WorkAssignment mutation. The handle-keyed pool needs no equivalent.
  void on_split(std::size_t k);
  void on_append();
  void on_prepend();

  /// Per-interval insertion curves for `window`, excluding `ignore_job`.
  /// Entries whose epoch and length still match are served as hits; stale
  /// entries rebuild and re-cache. An interval that currently holds a load
  /// of `ignore_job` is built into scratch storage and not cached (the
  /// cached curve must describe all committed loads). The span views a
  /// reused member buffer — no per-call allocation on the hot path — and
  /// stays valid until the next call or structural notification.
  [[nodiscard]] std::span<const util::PiecewiseLinear* const> curves_for(
      const model::WorkAssignment& assignment,
      const model::TimePartition& partition, int num_processors,
      model::IntervalRange window, model::JobId ignore_job = -1);

  /// Handle-keyed variant over the indexed interval store. Same hit
  /// semantics and identical curve arithmetic; entries are validated by
  /// (epoch, length) against the store, so refinements between calls need
  /// no notification. The slab grows lazily with the store's handle space.
  [[nodiscard]] std::span<const util::PiecewiseLinear* const> curves_for(
      const model::IntervalStore& store, int num_processors,
      model::IntervalRange window, model::JobId ignore_job = -1);

  [[nodiscard]] const Stats& stats() const { return stats_; }

  // -- windowed screening (convex::CurveSegmentTree, indexed backend) ------
  //
  // The cache owns the segment tree over per-interval insertion curves and
  // is the contract point for keeping it honest: schedulers report every
  // committed load change through note_load_changed, structural
  // refinements are discovered lazily from the store's handle space, and
  // tree leaves are built through the same epoch-validated entries that
  // curves_for serves (so a leaf rebuild warms the cache and vice versa).

  /// Certified bounds on sum_{k in window} z_k(speed) over the store's
  /// intervals — the screening query behind PdOptions::windowed. The
  /// bounds describe the *all-loads* curves: a caller excluding a job must
  /// ensure that job holds no load in the window (true for any job id
  /// never accepted before, which the schedulers track).
  [[nodiscard]] convex::CapacityBounds window_capacity_bounds(
      const model::IntervalStore& store, int num_processors,
      model::IntervalRange window, double speed);

  /// Reports a committed load change on interval `h` so the tree's
  /// summaries recombine before the next screening query. Must follow
  /// every IntervalStore::set_load when the windowed screen is in use.
  void note_load_changed(model::IntervalStore::Handle h) {
    tree_.mark_dirty(h);
  }

  /// The all-loads insertion curve for `h`, served from the handle-keyed
  /// entry pool with the usual (epoch, length) validation. Shared by the
  /// tree's leaf builds and exact boundary evaluations.
  [[nodiscard]] const util::PiecewiseLinear& validated_curve(
      const model::IntervalStore& store, int num_processors,
      model::IntervalStore::Handle h);

  [[nodiscard]] const convex::CurveSegmentTree& segment_tree() const {
    return tree_;
  }

  // -- horizon compaction (indexed backend) --------------------------------

  /// Cache-side half of a prefix compaction the owner just ran on the
  /// store: releases the freed handles' cached curves, prunes their tree
  /// nodes, garbage-collects off-grid records behind the frontier (no
  /// future window can start before it), and reconciles the store's
  /// recycled-birth log. The owner must have materialized every lazy
  /// annotation behind the frontier before compacting (retired loads feed
  /// the retired-energy accumulator).
  void on_compacted(model::IntervalStore& store, double frontier,
                    const std::vector<model::IntervalStore::Handle>& freed);

  // -- lazy water-level annotations (PdOptions::lazy, indexed backend) -----
  //
  // An accepted virgin-uniform-window job is recorded as ONE range
  // annotation {[t0, t1), job, amount, first_amount} instead of a load
  // write per window interval (convex::water_fill_uniform replays the
  // reference arithmetic in closed form). The annotation is expanded into
  // ordinary IntervalStore loads — "materialized" — the first time anything
  // needs the eager state of that range:
  //   * before_boundary: a new boundary is about to split an interval
  //     inside the range (materializing first keeps the proportional split
  //     arithmetic bitwise identical to the eager engine);
  //   * lazy_materialize_range: an arrival's exact fallback (or the
  //     fractional screen) is about to read the range's loads;
  //   * lazy_flush: a snapshot/energy/schedule consumer needs everything.
  // Pending ranges are pairwise disjoint by construction: a lazy commit
  // requires its window to be virgin (disjoint from the committed extent,
  // which contains every pending range).
  //
  // The segment tree is deliberately NOT told about pending annotations:
  // pending load only *shrinks* true capacity, so the stale (virgin)
  // bounds over-estimate and the windowed reject certificate stays sound.
  // The fractional full-service certificate (lo >= work) is the opposite
  // direction, so fractional PD materializes the window *before* its
  // screen. curves_for enforces the contract with a hard check.

  struct LazyStats {
    long long commits = 0;           // accepts recorded as annotations
    long long materializations = 0;  // annotations expanded into loads
  };

  /// Turns the lazy bookkeeping on (schedulers with PdOptions::lazy). The
  /// flag survives reset() so a recycled scheduler keeps its mode; reset()
  /// clears all lazy *state* (pending annotations, extent, grid).
  void enable_lazy(bool on) { lazy_enabled_ = on; }
  [[nodiscard]] bool lazy_enabled() const { return lazy_enabled_; }

  /// Hook before IntervalStore::ensure_boundary(t): if t is new and falls
  /// strictly inside a pending range, materialize that annotation so the
  /// upcoming split divides real loads exactly as the eager engine does.
  void before_boundary(model::IntervalStore& store, double t);
  /// Hook after ensure_boundary(t): classifies the new boundary against
  /// the detected uniform grid (see lazy_virgin_uniform).
  void after_boundary(const model::IntervalStore& store, double t);

  /// True iff [t0, t1) is a certified virgin uniform window: `count`
  /// intervals whose lengths are all bitwise equal to the detected
  /// power-of-two grid unit (written to *unit) and that carry no committed
  /// or pending load. Exactly the precondition of water_fill_uniform.
  [[nodiscard]] bool lazy_virgin_uniform(const model::IntervalStore& store,
                                         double t0, double t1,
                                         std::size_t count, double* unit);

  /// Records an accepted placement on the virgin window [t0, t1) as a
  /// pending annotation and extends the committed extent.
  void lazy_commit(double t0, double t1, model::JobId job, double amount,
                   double first_amount);

  /// Extends the committed-load extent (eager commits must report here so
  /// the virgin test stays sound when lazy mode is on).
  void note_commit_extent(double t0, double t1);

  /// Any pending annotation intersecting [t0, t1)?
  [[nodiscard]] bool lazy_pending_overlap(double t0, double t1) const;

  /// Materializes every pending annotation intersecting [t0, t1).
  void lazy_materialize_range(model::IntervalStore& store, double t0,
                              double t1);
  /// Materializes everything (snapshot/energy/schedule consumers).
  void lazy_flush(model::IntervalStore& store);

  [[nodiscard]] std::size_t lazy_pending_count() const {
    return pending_.size();
  }
  [[nodiscard]] const LazyStats& lazy_stats() const { return lazy_stats_; }

  // -- checkpoint (src/io/state_io) ----------------------------------------

  /// Plain-data image of the lazy annotation machinery — everything that
  /// affects future decisions (pending annotations, committed extent, grid
  /// detection). Cached curves and tree summaries are deliberately NOT
  /// part of it: they are derived state, and a cold rebuild serves
  /// decision-identical certificates (only hit/prune counters can differ).
  struct LazyState {
    struct PendingRange {
      double t0 = 0.0, t1 = 0.0;
      model::JobId job = -1;
      double amount = 0.0, first_amount = 0.0;
    };
    std::vector<PendingRange> pending;
    bool extent_set = false;
    double extent_lo = 0.0, extent_hi = 0.0;
    double grid_unit = 0.0;
    bool grid_dead = false;
    std::vector<double> grid_early;
    std::vector<double> offgrid;
    LazyStats stats;
  };
  [[nodiscard]] LazyState lazy_state() const;
  void restore_lazy_state(const LazyState& s);

 private:
  struct Entry {
    bool built = false;
    std::uint64_t epoch = 0;
    double length = 0.0;
    util::PiecewiseLinear curve;
  };

  std::vector<Entry> entries_;         // position-keyed (contiguous backend)
  std::vector<Entry> handle_entries_;  // handle-keyed (indexed backend)
  std::vector<util::PiecewiseLinear> scratch_;  // ignore_job-tainted curves
  std::vector<const util::PiecewiseLinear*> out_;  // curves_for result buffer
  convex::CurveSegmentTree tree_;  // windowed screening summaries
  // Query-scoped context for the tree's curve callback (kept as members so
  // the lambda captures only `this` and stays heap-free).
  const model::IntervalStore* tree_store_ = nullptr;
  int tree_procs_ = 0;
  std::size_t recycled_cursor_ = 0;  // store recycled-birth log entries seen
  Stats stats_;

  // -- lazy water-level state ----------------------------------------------
  struct Pending {
    double t1 = 0.0;            // range end (key of pending_ is t0)
    model::JobId job = -1;
    double amount = 0.0;        // per-interval share
    double first_amount = 0.0;  // first interval: share + residue
  };
  void observe_boundary(const model::IntervalStore& store, double t);
  void classify_boundary(double t);
  void materialize(model::IntervalStore& store,
                   std::map<double, Pending>::iterator it);
  void sync_recycled(const model::IntervalStore& store);

  bool lazy_enabled_ = false;
  bool boundary_was_new_ = false;  // before_/after_boundary handshake
  std::map<double, Pending> pending_;  // disjoint ranges, keyed by t0
  // Committed-load time extent (eager + lazy); the virgin test is
  // disjointness from this range, which conservatively covers every
  // pending annotation.
  bool extent_set_ = false;
  double extent_lo_ = 0.0;
  double extent_hi_ = 0.0;
  // Uniform-grid detection. grid_unit_ is the smallest power-of-two
  // neighbor gap observed (power-of-two so that k*unit and consecutive
  // differences are exact in floating point); boundaries that are not an
  // exact integer multiple of it land in offgrid_. A window with no
  // off-grid boundary and exactly span/unit intervals is certified
  // uniform. Refining the unit keeps old off-grid records — conservative:
  // the fast path misses, never misfires.
  double grid_unit_ = 0.0;          // 0 = not yet detected
  bool grid_dead_ = false;          // detection abandoned; fast path off
  std::vector<double> grid_early_;  // boundaries seen before detection
  std::set<double> offgrid_;
  LazyStats lazy_stats_;
};

}  // namespace pss::core
