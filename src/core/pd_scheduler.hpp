// The online primal-dual algorithm PD (Listing 1) for multiple
// speed-scalable processors — the paper's primary contribution.
//
// On every arrival, PD greedily raises the new job's load variables in the
// atomic intervals where the marginal energy cost lambda_{jk} is smallest,
// keeping all raised marginals equal (a water-filling over the insertion
// curves z_k(s) of src/chen), until either
//   (a) the whole workload is placed  -> accept, lambda_j = delta*w*P'(s*),
//   (b) the marginal reaches v_j      -> reject, lambda_j = v_j.
// Committed loads of earlier jobs are never redistributed — the structural
// difference from Optimal Available illustrated by Fig. 3.
//
// The time partition refines online (Section 3, "Concerning the Time
// Partitioning"): new boundaries split intervals and committed work splits
// proportionally, which provably leaves the produced schedule unchanged.
//
// Theorem 3: with delta = alpha^(1-alpha), PD is alpha^alpha-competitive,
// and that bound is tight for PD.
#pragma once

#include <algorithm>
#include <iosfwd>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/curve_cache.hpp"
#include "core/online_state.hpp"
#include "core/policy_tuner.hpp"
#include "model/instance.hpp"
#include "model/schedule.hpp"
#include "model/time_partition.hpp"
#include "model/work_assignment.hpp"

namespace pss::core {
class PdScheduler;
}
namespace pss::io {
// Binary checkpoint of a scheduler session (src/io/state_io.cpp); friends
// of PdScheduler because a restore must reproduce the private state
// bit-for-bit.
void save_scheduler(std::ostream& os, const core::PdScheduler& s);
void load_scheduler(std::istream& is, core::PdScheduler& s);
}  // namespace pss::io

namespace pss::core {

struct PdOptions {
  /// PD's parameter; nullopt selects the paper-optimal alpha^(1-alpha).
  std::optional<double> delta;
  /// Place arrivals through the per-interval insertion-curve cache and the
  /// lazy-sum water filling (the fast path). false recomputes every curve
  /// from scratch per arrival — the stateless reference implementation.
  /// Both paths commit bit-identical decisions (tests/test_differential).
  bool incremental = true;
  /// Keep the online state in the stable-handle model::IntervalStore, so
  /// every Section-3 refinement (boundary insert, split, append, prepend)
  /// is O(log n) instead of the contiguous representation's O(n) vector
  /// shifts — the difference between flat and linearly-degrading
  /// per-arrival cost at million-interval horizons (bench_horizon_scale).
  /// false selects the contiguous TimePartition + WorkAssignment backend,
  /// retained as the reference the differential suite compares against.
  /// All four {incremental} x {indexed} combinations commit bit-identical
  /// decisions.
  bool indexed = true;
  /// Screen wide-window arrivals through the convex::CurveSegmentTree
  /// capacity bounds before touching the window: a rejection the bounds
  /// certify costs O(log n · log knots) instead of O(window), and an
  /// inconclusive screen falls back to the exact linear scan — so every
  /// decision stays bitwise identical to the windowed=false engine (the
  /// extended differential matrix proves {incremental} x {indexed} x
  /// {windowed} pairwise identical). Only meaningful on the indexed
  /// backend; with indexed=false the option is inert. Accepted arrivals
  /// are Ω(window) regardless (they commit a load into every window
  /// interval), so the screen targets the rejection path — the case where
  /// a heavy-lookahead arrival previously paid O(window) for nothing.
  bool windowed = true;
  /// Lazy water-level accepts (indexed backend only; inert otherwise).
  /// An arrival whose window is a certified *virgin uniform* range — all
  /// interval lengths bitwise equal to the detected power-of-two grid
  /// unit, no committed or pending load — is decided by the O(log n)
  /// closed-form replay convex::water_fill_uniform and, if accepted,
  /// recorded as a single range annotation in the CurveCache instead of
  /// one load write per window interval. Annotations materialize into
  /// ordinary loads on first touch (split, exact fallback, snapshot), so
  /// every observable decision/load/energy is bitwise identical to the
  /// eager engine — lazy=false is retained as the bitwise reference, and
  /// the differential cube {incremental}x{indexed}x{windowed}x{lazy}
  /// proves it. This is what makes accept-heavy wide-window streams
  /// sub-linear per accept (bench_accept_scale / BENCH_accept.json).
  bool lazy = true;
  /// Keep the per-arrival decision log behind decisions() (and the
  /// rejected marks of final_schedule()). The log grows one entry per
  /// arrival forever, so indefinitely-running serving layers turn it off —
  /// it is the one piece of state horizon compaction cannot bound.
  bool record_decisions = true;
  /// Adaptive backend selection: the session starts on the cheap
  /// contiguous/unscreened backend regardless of the flags above and a
  /// PolicyTuner flips it (up to the configured cube position) through
  /// live migration once the observed workload warrants the heavier
  /// machinery — see core/policy_tuner.hpp. Every flip preserves bitwise
  /// decisions (tests/test_policy_tuner.cpp), so `adaptive` changes only
  /// per-arrival cost, never an outcome.
  bool adaptive = false;
  /// Thresholds/hysteresis of that tuner (ignored unless adaptive).
  TunerOptions tuner = {};
};

/// Lightweight instrumentation, filled as arrivals are processed.
struct PdCounters {
  long long arrivals = 0;
  long long accepted = 0;
  long long rejected = 0;
  long long interval_splits = 0;     // online refinements (Section 3)
  long long horizon_extensions = 0;  // boundaries outside the known horizon
  long long curve_cache_hits = 0;      // curves served without rebuilding
  long long curve_cache_rebuilds = 0;  // curves (re)built from loads
  long long window_prunes = 0;   // rejections certified by the segment tree
  long long window_exact = 0;    // windowed arrivals that took the exact path
  long long lazy_fast_path = 0;  // arrivals decided by the closed-form replay
  long long lazy_commits = 0;           // accepts recorded as annotations
  long long lazy_materializations = 0;  // annotations expanded into loads
  long long compactions = 0;           // advance_to passes that retired work
  long long compacted_intervals = 0;   // intervals retired behind the frontier
  std::size_t max_intervals = 0;     // partition size high-water mark
  std::size_t max_window = 0;        // largest availability window seen
  long long backend_flips = 0;  // live migrations (tuner or migrate_to)
  long long tuner_evals = 0;    // PolicyTuner evaluations at advances

  /// Aggregation across independent schedulers (shards, sweeps): counts
  /// add, high-water marks take the max. Implemented over the reflection
  /// table below so a new counter cannot be dropped from snapshots.
  PdCounters& operator+=(const PdCounters& other);
  friend PdCounters operator+(PdCounters lhs, const PdCounters& rhs) {
    lhs += rhs;
    return lhs;
  }
};

/// Named-counter reflection table: the single source of truth walked by
/// PdCounters::operator+= (snapshot aggregation), io::save_counters /
/// io::load_counters (checkpoint wire order == table order), and the
/// coverage unit test in tests/test_core.cpp. Adding a PdCounters field
/// without a row here fails that test — the aggregation gap this table
/// closes is a counter that silently vanishes from EngineSnapshot totals
/// and checkpoints.
struct PdCounterField {
  enum class Kind { kAdd, kMax };
  const char* name;
  Kind kind;
  long long PdCounters::*count;   // set for kAdd rows
  std::size_t PdCounters::*mark;  // set for kMax rows
};

inline constexpr PdCounterField kPdCounterFields[] = {
    {"arrivals", PdCounterField::Kind::kAdd, &PdCounters::arrivals, nullptr},
    {"accepted", PdCounterField::Kind::kAdd, &PdCounters::accepted, nullptr},
    {"rejected", PdCounterField::Kind::kAdd, &PdCounters::rejected, nullptr},
    {"interval_splits", PdCounterField::Kind::kAdd,
     &PdCounters::interval_splits, nullptr},
    {"horizon_extensions", PdCounterField::Kind::kAdd,
     &PdCounters::horizon_extensions, nullptr},
    {"curve_cache_hits", PdCounterField::Kind::kAdd,
     &PdCounters::curve_cache_hits, nullptr},
    {"curve_cache_rebuilds", PdCounterField::Kind::kAdd,
     &PdCounters::curve_cache_rebuilds, nullptr},
    {"window_prunes", PdCounterField::Kind::kAdd, &PdCounters::window_prunes,
     nullptr},
    {"window_exact", PdCounterField::Kind::kAdd, &PdCounters::window_exact,
     nullptr},
    {"lazy_fast_path", PdCounterField::Kind::kAdd,
     &PdCounters::lazy_fast_path, nullptr},
    {"lazy_commits", PdCounterField::Kind::kAdd, &PdCounters::lazy_commits,
     nullptr},
    {"lazy_materializations", PdCounterField::Kind::kAdd,
     &PdCounters::lazy_materializations, nullptr},
    {"compactions", PdCounterField::Kind::kAdd, &PdCounters::compactions,
     nullptr},
    {"compacted_intervals", PdCounterField::Kind::kAdd,
     &PdCounters::compacted_intervals, nullptr},
    {"max_intervals", PdCounterField::Kind::kMax, nullptr,
     &PdCounters::max_intervals},
    {"max_window", PdCounterField::Kind::kMax, nullptr,
     &PdCounters::max_window},
    {"backend_flips", PdCounterField::Kind::kAdd, &PdCounters::backend_flips,
     nullptr},
    {"tuner_evals", PdCounterField::Kind::kAdd, &PdCounters::tuner_evals,
     nullptr},
};

inline PdCounters& PdCounters::operator+=(const PdCounters& other) {
  for (const PdCounterField& f : kPdCounterFields) {
    if (f.kind == PdCounterField::Kind::kAdd)
      this->*(f.count) += other.*(f.count);
    else
      this->*(f.mark) = std::max(this->*(f.mark), other.*(f.mark));
  }
  return *this;
}

struct ArrivalDecision {
  bool accepted = false;
  /// Own-speed s* at which the job was planned (accepted), or the rejection
  /// speed it failed to meet (rejected).
  double speed = 0.0;
  /// Final dual variable lambda-tilde_j.
  double lambda = 0.0;
  /// Planned energy PD would invest into the job at commit time.
  double planned_energy = 0.0;
};

/// Incremental online scheduler. Jobs must arrive in nondecreasing release
/// order; the final schedule is the Chen et al. realization of the committed
/// assignment (Section 3).
class PdScheduler {
 public:
  PdScheduler(model::Machine machine, PdOptions options = {});

  /// Processes one arrival and commits the decision.
  ArrivalDecision on_arrival(const model::Job& job);

  /// Advances the release-order monotonicity clock to t without an arrival
  /// — structure-free: no boundary is inserted and no cache is dirtied, so
  /// a periodic heartbeat leaves the partition exactly as arrivals built
  /// it. With compact = true (indexed backend; inert otherwise, like
  /// windowed/lazy), additionally retires every interval ending at or
  /// before the frontier t - util::clock_tol(t): the retired prefix's
  /// energy moves into retired_energy(), its store/cache/tree state is
  /// reclaimed, and — because any future arrival has release within
  /// clock_tol of t or later — every subsequent decision is bitwise
  /// identical to the uncompacted run (tests/test_compaction.cpp).
  void advance_to(double t, bool compact = false);

  /// Returns the scheduler to its freshly-constructed state (machine,
  /// delta and the *configured* mode are kept — a session that migrated
  /// backends mid-run reverts to its constructor-time cube position, and
  /// an adaptive session restarts contiguous with a fresh tuner). The
  /// session-reuse entry point for the stream engine: a pooled scheduler
  /// object is reset and handed to the next stream instead of being
  /// destroyed and reallocated.
  void reset();

  /// Live backend migration: converts the session to the cube position in
  /// `target` (only incremental/indexed/windowed/lazy are read; windowed
  /// and lazy are forced off without indexed, as in the constructor). The
  /// semantic state — boundaries, committed loads, pending lazy
  /// annotations, accepted ids, decisions, clock, retired energy — is
  /// carried; everything derived (curve cache, segment tree, grid
  /// classification) is rebuilt cold through the state_io restore
  /// discipline, so every subsequent decision is bitwise identical to the
  /// never-migrated twin (tests/test_policy_tuner.cpp proves this at
  /// randomized migration points across the whole cube). Returns false if
  /// the target equals the live mode (no-op).
  bool migrate_to(const PdOptions& target);

  /// The committed partition / assignment. On the contiguous backend these
  /// are references to the live state; on the indexed backend (the
  /// default) each call materializes a fresh snapshot into a member buffer
  /// — O(n), meant for inspection and end-of-run consumers, not for the
  /// arrival hot path. A returned reference is invalidated by the next
  /// call to the same accessor.
  [[nodiscard]] const model::TimePartition& partition() const {
    if (!indexed_) return state_.partition;
    partition_snapshot_ = state_.store.snapshot_partition();
    return partition_snapshot_;
  }
  [[nodiscard]] const model::WorkAssignment& assignment() const {
    if (!indexed_) return state_.assignment;
    flush_lazy();  // pending annotations must land before a load snapshot
    assignment_snapshot_ = state_.store.snapshot_assignment();
    return assignment_snapshot_;
  }
  [[nodiscard]] double delta() const { return delta_; }
  [[nodiscard]] bool incremental() const { return incremental_; }
  [[nodiscard]] bool indexed() const { return indexed_; }
  [[nodiscard]] bool windowed() const { return windowed_; }
  [[nodiscard]] bool lazy() const { return lazy_; }
  [[nodiscard]] bool adaptive() const { return adaptive_; }
  [[nodiscard]] const PolicyTuner& tuner() const { return tuner_; }

  /// Total energy of the committed plan (sum of interval P_k), including
  /// the energy of intervals retired by compaction. Bitwise identical to
  /// the uncompacted engine's value: the accumulator continues the same
  /// left-to-right non-empty-interval summation assignment_energy runs.
  [[nodiscard]] double planned_energy() const;

  /// Energy already accounted to compacted (retired) intervals.
  [[nodiscard]] double retired_energy() const { return retired_energy_; }

  /// Live (non-retired) interval count — the flat-memory soak metric.
  [[nodiscard]] std::size_t live_intervals() const {
    return state_.num_intervals();
  }
  /// Slab footprint proxy: handle-space of the indexed store (0 on the
  /// contiguous backend). Stays bounded under steady-state compaction
  /// because freed handles are recycled.
  [[nodiscard]] std::size_t handle_space() const {
    return indexed_ ? state_.store.handle_space() : 0;
  }

  /// Concrete migration schedule realizing the committed plan.
  [[nodiscard]] model::Schedule final_schedule() const;

  /// Decisions in arrival order (empty when record_decisions is off).
  [[nodiscard]] const std::vector<std::pair<model::JobId, ArrivalDecision>>&
  decisions() const {
    return decisions_;
  }

  [[nodiscard]] const PdCounters& counters() const { return counters_; }

 private:
  friend void io::save_scheduler(std::ostream&, const core::PdScheduler&);
  friend void io::load_scheduler(std::istream&, core::PdScheduler&);

  void ensure_boundary(double t);
  /// Resets the live flags to the configured cube position (contiguous
  /// start when adaptive) and aligns state_/cache_ with them.
  void apply_start_flags();
  /// Advance-boundary tuner hook: evaluates the PolicyTuner (respecting
  /// its eval_period) and migrates when it returns a flip verdict.
  void maybe_tune();
  /// Rebuilds the windowed screen's accepted-id map from the live loads
  /// (plus carried lazy annotations) after a migration enabled the screen
  /// mid-session. Deadlines are the last load-bearing interval ends — a
  /// conservative superset of what the never-windowed history recorded,
  /// which keeps the screen sound (a job with committed window load can
  /// never pass it) without changing any decision.
  void rebuild_accepted_ids(const CurveCache::LazyState& carried);
  /// After enabling lazy mid-session: spans the whole live range with the
  /// commit extent when any committed load exists, so the virgin-window
  /// certificate stays sound (it can only miss fast paths, never misfire).
  void seed_lazy_extent();
  /// Retires every interval ending at or before `frontier`: accumulates
  /// their energy, reclaims store/cache/tree state, and drops accepted-id
  /// records whose whole window is behind the frontier (their loads cannot
  /// appear in any live window, so the screen is valid for them again).
  void compact_before(double frontier);
  /// Materializes every pending lazy annotation. Logically const: it only
  /// moves already-decided state between representations (annotation ->
  /// per-interval loads) and cannot change any observable value, which is
  /// why the const accessors may call it.
  void flush_lazy() const;

  model::Machine machine_;
  double delta_;
  // Live cube position — migrate_to moves these at runtime; the configured
  // position lives in base_options_ (the ceiling adaptive tuning honours).
  bool incremental_;
  bool indexed_;
  bool windowed_;
  bool lazy_;
  bool record_decisions_;
  bool adaptive_;
  PdOptions base_options_;  // constructor-time config, flags normalized
  PolicyTuner tuner_;
  OnlineState state_;
  CurveCache cache_;
  // Job ids this scheduler has accepted, with the latest deadline seen
  // (windowed mode only). The segment tree bounds describe the all-loads
  // curves, so the screen is valid only for a job with no committed load
  // in the window; a re-arriving accepted id skips the screen and takes
  // the exact re-placement path. Compaction erases records whose deadline
  // is behind the frontier, bounding the map by the live window.
  std::unordered_map<model::JobId, double> accepted_ids_;
  // Snapshot buffers backing the partition()/assignment() accessors on the
  // indexed backend (cold path; see the accessor comment).
  mutable model::TimePartition partition_snapshot_;
  mutable model::WorkAssignment assignment_snapshot_;
  std::vector<std::pair<model::JobId, ArrivalDecision>> decisions_;
  std::vector<model::IntervalStore::Handle> freed_scratch_;  // compaction
  PdCounters counters_;
  double retired_energy_ = 0.0;
  double last_release_ = -1.0;
  bool first_arrival_ = true;
};

}  // namespace pss::core
