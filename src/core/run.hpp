// One-shot convenience runner: feed an instance to PD in release order,
// collect the schedule, cost, dual variables, and the certified bounds of
// Theorem 3.
#pragma once

#include <vector>

#include "core/pd_scheduler.hpp"
#include "model/instance.hpp"

namespace pss::core {

struct PdRunResult {
  model::Schedule schedule;
  model::WorkAssignment assignment;
  model::TimePartition partition;
  std::vector<double> lambda;    // lambda-tilde per job id
  std::vector<bool> accepted;    // per job id
  std::vector<double> speed;     // committed own-speed s* (or s_reject)
  model::CostBreakdown cost;     // energy + lost value

  /// g(lambda-tilde): certified lower bound on OPT (Lemma 6 + weak duality).
  double dual_lower_bound = 0.0;
  /// cost / g(lambda-tilde); Theorem 3 guarantees <= alpha^alpha for the
  /// default delta. An upper bound on the realized competitive ratio.
  double certified_ratio = 0.0;
};

/// Runs PD over the full instance (jobs fed in release order) and evaluates
/// the dual bound at the resulting lambda-tilde.
[[nodiscard]] PdRunResult run_pd(const model::Instance& instance,
                                 PdOptions options = {});

}  // namespace pss::core
