#include "core/run.hpp"

#include "convex/dual.hpp"
#include "util/assert.hpp"

namespace pss::core {

PdRunResult run_pd(const model::Instance& instance, PdOptions options) {
  PSS_REQUIRE(instance.num_jobs() > 0, "empty instance");
  PdScheduler scheduler(instance.machine(), options);
  for (const model::Job& job : instance.jobs_by_release())
    scheduler.on_arrival(job);

  PdRunResult result;
  result.partition = scheduler.partition();
  result.assignment = scheduler.assignment();
  result.schedule = scheduler.final_schedule();
  result.lambda.assign(instance.num_jobs(), 0.0);
  result.accepted.assign(instance.num_jobs(), false);
  result.speed.assign(instance.num_jobs(), 0.0);
  for (const auto& [id, decision] : scheduler.decisions()) {
    result.lambda[std::size_t(id)] = decision.lambda;
    result.accepted[std::size_t(id)] = decision.accepted;
    result.speed[std::size_t(id)] = decision.speed;
  }
  result.cost = result.schedule.cost(instance);

  const convex::DualReport dual =
      convex::dual_value(instance, result.partition, result.lambda);
  result.dual_lower_bound = dual.value;
  result.certified_ratio =
      dual.value > 0.0 ? result.cost.total() / dual.value : 0.0;
  return result;
}

}  // namespace pss::core
