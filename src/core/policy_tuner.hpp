// Per-session adaptive backend selection (the ROADMAP's PolicyTuner).
//
// The engine exposes a 2x2x2x2 option cube, but the right point in it is
// workload-dependent: the treap-backed IntervalStore costs ~5-10% over the
// contiguous vectors while the partition stays small, the windowed screen
// only pays off when it actually certifies rejections, and the lazy
// closed-form accept only fires on grid-uniform virgin windows. The tuner
// watches a session's PdCounters at advance boundaries and flips the live
// backend through PdScheduler::migrate_to once the observed workload
// crosses a hysteresis threshold:
//
//   * contiguous -> indexed when the live interval count reaches
//     `indexed_threshold`; back down only when it falls to
//     `indexed_threshold * down_fraction` (the gap is the hysteresis band
//     that keeps an oscillating workload from thrashing the backend).
//   * windowed / lazy ride the indexed flip (bounded by the session's
//     configured cube position), and are dropped again if the observed
//     prune / fast-path rates stay below their floors over a full sample
//     window — a screen that never certifies is pure overhead.
//
// Every flip is decision-preserving by construction (migration rebuilds
// the state cold through the state_io restore discipline), so the tuner
// changes only *cost*, never a decision — the randomized migration-point
// differential harness in tests/test_policy_tuner.cpp is the proof.
//
// With `cost_model` on, the tuner additionally takes one multiplicative
// gradient step on the flip threshold per evaluation, driven by the sign
// of the observed per-arrival cost EWMAs of the two backends (the
// verify_proposition4-style one-step update). Off by default: it makes
// flip *timing* depend on wall-clock measurements, and the deterministic
// tests keep it off.
#pragma once

#include <cstddef>

namespace pss::core {

struct PdCounters;

struct TunerOptions {
  /// Live-interval count at which a contiguous session flips to the
  /// indexed backend (cost-model steps adjust the live copy in TunerState).
  std::size_t indexed_threshold = 1024;
  /// Hysteresis: flip back to contiguous only below
  /// indexed_threshold * down_fraction. Must be < 1.
  double down_fraction = 0.25;
  /// Evaluate every Nth advance boundary (1 = every advance).
  long long eval_period = 1;
  /// Arrivals that must accumulate since the last flip before the windowed
  /// screen or lazy accepts can be judged ineffective and dropped.
  long long min_feature_samples = 256;
  /// Keep the windowed screen only if certified prunes stay at or above
  /// this fraction of screened arrivals over a sample window.
  double min_prune_rate = 0.05;
  /// Keep lazy accepts only if the closed-form fast path fires on at least
  /// this fraction of arrivals over a sample window.
  double min_lazy_rate = 0.05;
  /// One multiplicative gradient step on the threshold per evaluation from
  /// observed per-arrival cost (non-deterministic timing; default off).
  bool cost_model = false;
  /// Step size of that update (threshold *= 1 -/+ cost_eta).
  double cost_eta = 0.25;
  /// Clamp range for the cost-model-adjusted threshold.
  std::size_t threshold_min = 64;
  std::size_t threshold_max = std::size_t(1) << 20;
};

/// The tuner's checkpointable trajectory: everything a restore needs to
/// resume the same policy (io::save_scheduler round-trips this verbatim).
struct TunerState {
  double threshold = 0.0;  // live flip threshold; 0 = options default
  long long advances = 0;  // advance boundaries seen (eval_period phase)
  bool window_dropped = false;  // screen judged ineffective this stint
  bool lazy_dropped = false;    // lazy accepts judged ineffective
  // Counter snapshot at the last flip: feature rates are measured over the
  // delta since this mark, so a new stint is judged on its own traffic.
  long long mark_arrivals = 0;
  long long mark_window_prunes = 0;
  long long mark_window_exact = 0;
  long long mark_lazy_fast = 0;
  // Per-arrival cost EWMAs (seconds; 0 = no sample yet), cost_model only.
  double ewma_contig = 0.0;
  double ewma_indexed = 0.0;
};

/// What evaluate() decided the live cube position should be.
struct TunerVerdict {
  bool migrate = false;  // true iff the flags below differ from current
  bool indexed = false;
  bool windowed = false;
  bool lazy = false;
};

class PolicyTuner {
 public:
  PolicyTuner() = default;
  explicit PolicyTuner(const TunerOptions& options) : options_(options) {}

  /// Advance-boundary gate: counts the tick and returns true when this
  /// tick is an evaluation point (every eval_period-th advance).
  bool tick();

  /// Decides the target cube position from the session's observed
  /// counters. `ceil_*` is the session's configured cube position — the
  /// tuner never enables a feature the configuration did not ask for.
  /// Deterministic given the counter/interval inputs unless cost_model is
  /// on (the EWMAs then steer the threshold).
  TunerVerdict evaluate(const PdCounters& counters,
                        std::size_t live_intervals, bool cur_indexed,
                        bool cur_windowed, bool cur_lazy, bool ceil_indexed,
                        bool ceil_windowed, bool ceil_lazy);

  /// Feeds one observed per-arrival cost sample (cost_model only).
  void observe_cost(bool on_indexed, double seconds);

  [[nodiscard]] const TunerOptions& options() const { return options_; }
  [[nodiscard]] const TunerState& state() const { return state_; }
  /// Checkpoint restore writes the trajectory back through this.
  [[nodiscard]] TunerState& mutable_state() { return state_; }

 private:
  TunerOptions options_;
  TunerState state_;
};

}  // namespace pss::core
