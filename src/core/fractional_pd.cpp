#include "core/fractional_pd.hpp"

#include <algorithm>
#include <cmath>

#include "chen/realize.hpp"
#include "convex/dual.hpp"
#include "convex/solver.hpp"
#include "convex/water_fill.hpp"
#include "core/online_state.hpp"
#include "core/rejection.hpp"
#include "model/power.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace pss::core {

FractionalPdResult run_fractional_pd(const model::Instance& instance,
                                     FractionalPdOptions options) {
  PSS_REQUIRE(instance.num_jobs() > 0, "empty instance");
  const model::Machine machine = instance.machine();
  const double alpha = machine.alpha;
  const double delta = options.delta.value_or(1.0);
  const model::PowerFunction power(alpha);

  OnlineState state;
  state.indexed = options.indexed;
  // Windowed screening state (see FractionalPdOptions::windowed). Jobs are
  // processed once each with instance-unique ids, so the all-loads bounds
  // always describe the arriving job's exclusion view exactly.
  const bool windowed = options.windowed && options.indexed;
  const bool lazy = options.lazy && options.indexed;
  CurveCache cache;
  cache.enable_lazy(lazy);
  FractionalPdResult result;
  result.fraction.assign(instance.num_jobs(), 0.0);
  result.lambda.assign(instance.num_jobs(), 0.0);

  for (const model::Job& job : instance.jobs_by_release()) {
    CurveCache* hook = state.indexed ? &cache : nullptr;
    state.ensure_boundary(job.release, hook);
    state.ensure_boundary(job.deadline, hook);
    const auto window = state.indexed
                            ? state.store.range(job.release, job.deadline)
                            : state.partition.job_range(job);
    // The full-service certificate below (bounds.lo >= work) would be
    // unsound against bounds that miss pending load, so expand any
    // annotation intersecting this window before screening. Reject-side
    // staleness would be sound, but fractional needs both directions.
    if (lazy)
      cache.lazy_materialize_range(state.store, job.release, job.deadline);
    const double s_cap = rejection_speed(job.value, job.work, alpha, delta);

    // Certified shortcuts off the segment-tree bounds; anything
    // inconclusive computes the capacity with the exact reference scan.
    // A zero-value job has s_cap == 0 (finite): skip the screen — the
    // tree requires a positive speed — and let the exact scan return its
    // zero capacity as on the unscreened engine.
    bool full_certified = false;
    if (windowed && std::isfinite(s_cap) && s_cap > 0.0) {
      const convex::CapacityBounds bounds = cache.window_capacity_bounds(
          state.store, machine.num_processors, window, s_cap);
      if (bounds.hi <= 1e-12 * job.work) {
        // capacity <= hi, so min(work, capacity) is below the dust
        // threshold — the fully-unserved branch, without the scan.
        ++result.window_prunes;
        result.lambda[std::size_t(job.id)] = job.value;
        continue;
      }
      if (bounds.lo >= job.work) {
        // capacity >= work, so min(work, capacity) == work bitwise.
        full_certified = true;
        ++result.window_prunes;
      } else {
        ++result.window_exact;
      }
    } else if (windowed) {
      ++result.window_exact;
    }

    // Certified closed-form replay on a virgin uniform window: capacity,
    // level and placement collapse to O(log n) arithmetic and the commit
    // becomes one range annotation (see PdScheduler's lazy fast path).
    double unit = 0.0;
    if (lazy && s_cap > 0.0 &&
        cache.lazy_virgin_uniform(state.store, job.release, job.deadline,
                                  window.size(), &unit)) {
      const double capacity =
          full_certified || !std::isfinite(s_cap)
              ? util::kInf
              : convex::window_capacity_uniform(
                    unit, window.size(), machine.num_processors, s_cap);
      const double target = std::min(job.work, capacity);
      if (target <= 1e-12 * job.work) {
        result.lambda[std::size_t(job.id)] = job.value;
        continue;  // fully unserved
      }
      const convex::UniformFill fill = convex::water_fill_uniform(
          unit, window.size(), machine.num_processors, target, util::kInf);
      PSS_CHECK(fill.accepted, "fractional placement failed");
      cache.lazy_commit(job.release, job.deadline, job.id, fill.amount,
                        fill.first_amount);
      result.fraction[std::size_t(job.id)] = target / job.work;
      result.lambda[std::size_t(job.id)] =
          target < job.work
              ? job.value
              : delta * job.work * power.derivative(fill.level);
      continue;
    }

    // Work the window absorbs below the marginal price v_j; serve up to w.
    const double capacity =
        full_certified || !std::isfinite(s_cap)
            ? util::kInf
            : (state.indexed
                   ? convex::window_capacity(state.store,
                                             machine.num_processors, window,
                                             s_cap, job.id)
                   : convex::window_capacity(state.assignment, state.partition,
                                             machine.num_processors, window,
                                             s_cap, job.id));
    const double target = std::min(job.work, capacity);
    if (target <= 1e-12 * job.work) {
      result.lambda[std::size_t(job.id)] = job.value;
      continue;  // fully unserved
    }
    auto placement =
        state.indexed
            ? convex::water_fill(state.store, machine.num_processors, window,
                                 target, util::kInf, job.id)
            : convex::water_fill(state.assignment, state.partition,
                                 machine.num_processors, window, target,
                                 util::kInf, job.id);
    PSS_CHECK(placement.has_value(), "fractional placement failed");
    if (state.indexed) {
      model::IntervalStore::Handle h = state.store.handle_at(window.first);
      for (std::size_t i = 0; i < window.size(); ++i) {
        state.store.set_load(h, job.id, placement->amounts[i]);
        if (windowed) cache.note_load_changed(h);
        h = state.store.next_handle(h);
      }
      if (lazy) cache.note_commit_extent(job.release, job.deadline);
    } else {
      for (std::size_t i = 0; i < window.size(); ++i)
        state.assignment.set_load(window.first + i, job.id,
                                  placement->amounts[i]);
    }
    result.fraction[std::size_t(job.id)] = target / job.work;
    // Full service below the cap fixes lambda at the realized marginal;
    // partial service means the marginal hit the price v_j.
    result.lambda[std::size_t(job.id)] =
        target < job.work ? job.value
                          : delta * job.work * power.derivative(
                                                   placement->speed);
  }

  if (lazy) {
    cache.lazy_flush(state.store);
    result.lazy_commits = cache.lazy_stats().commits;
    result.lazy_materializations = cache.lazy_stats().materializations;
  }
  result.partition = state.indexed ? state.store.snapshot_partition()
                                   : state.partition;
  result.assignment = state.indexed ? state.store.snapshot_assignment()
                                    : state.assignment;
  result.schedule = chen::realize_assignment(
      result.assignment, result.partition, machine.num_processors);
  result.energy = convex::assignment_energy(
      result.assignment, result.partition, machine.num_processors, alpha);
  for (const model::Job& job : instance.jobs())
    if (job.rejectable())
      result.lost_value +=
          (1.0 - result.fraction[std::size_t(job.id)]) * job.value;
  result.dual_lower_bound =
      convex::dual_value(instance, result.partition, result.lambda).value;
  return result;
}

}  // namespace pss::core
