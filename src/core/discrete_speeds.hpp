// Discrete speed levels — running the library's continuous-speed schedules
// on realistic processors.
//
// The paper (like Yao–Demers–Shenker) assumes a continuum of speeds, but
// real DVFS hardware (Intel SpeedStep, AMD PowerNow!) offers a finite level
// set. The classical reduction: a segment planned at constant speed s with
// s between adjacent levels lo <= s <= hi is emulated inside its own time
// window by running `hi` first and `lo` second with durations chosen to
// preserve the work. Because the emulation never leaves the segment's
// window, feasibility (windows, non-parallelism, per-processor
// disjointness) is preserved verbatim, and since P is convex the energy
// penalty is the chord-vs-curve gap of the level pair — it vanishes as the
// level grid refines (quantified by bench_tab_discrete_levels).
#pragma once

#include <vector>

#include "model/schedule.hpp"

namespace pss::core {

class SpeedLevels {
 public:
  /// Levels must be positive; they are sorted and deduplicated.
  explicit SpeedLevels(std::vector<double> levels);

  /// Geometric grid: `count` levels from s_min to s_max (inclusive).
  [[nodiscard]] static SpeedLevels geometric(double s_min, double s_max,
                                             int count);

  [[nodiscard]] const std::vector<double>& levels() const { return levels_; }
  [[nodiscard]] double min_level() const { return levels_.front(); }
  [[nodiscard]] double max_level() const { return levels_.back(); }

  /// Adjacent pair bracketing s (lo == hi when s is exactly a level or
  /// below the lowest level). Requires s <= max_level().
  struct Bracket {
    double lo;
    double hi;
  };
  [[nodiscard]] Bracket bracket(double speed) const;

  /// Worst-case energy inflation of two-level emulation across the whole
  /// grid: max over level pairs and mixing points of chord(P)/P.
  [[nodiscard]] double worst_overhead(double alpha) const;

 private:
  std::vector<double> levels_;
};

/// Rewrites every segment onto the level grid, preserving each segment's
/// work inside its own time window. Requires every segment speed to be at
/// most max_level(). Idle-capable: speeds below the lowest level run at the
/// lowest level for a shorter time (the remainder is idle).
[[nodiscard]] model::Schedule discretize_schedule(
    const model::Schedule& schedule, const SpeedLevels& levels);

}  // namespace pss::core
