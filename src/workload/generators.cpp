#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/random.hpp"

namespace pss::workload {

namespace {

/// Assign an energy-indexed value, or infinity for must-finish instances.
void price_job(model::Job& job, double alpha, double value_scale,
               bool must_finish, util::Rng& rng) {
  if (must_finish) {
    job.value = util::kInf;
    return;
  }
  // Jitter the scale by +-50% so rejection boundaries differ across jobs.
  const double jitter = rng.uniform(0.5, 1.5);
  job.value = std::max(1e-9, value_scale * jitter *
                                  energy_fair_value(job, alpha));
}

}  // namespace

double energy_fair_value(const model::Job& job, double alpha) {
  return util::pos_pow(job.work, alpha) /
         util::pos_pow(job.span(), alpha - 1.0);
}

model::Instance uniform_random(const UniformConfig& config,
                               model::Machine machine, std::uint64_t seed) {
  PSS_REQUIRE(config.num_jobs >= 1, "need at least one job");
  util::Rng rng(seed);
  std::vector<model::Job> jobs;
  jobs.reserve(std::size_t(config.num_jobs));
  for (int i = 0; i < config.num_jobs; ++i) {
    model::Job job;
    job.release = rng.uniform(0.0, config.horizon);
    job.deadline = job.release + rng.uniform(config.min_span, config.max_span);
    job.work = rng.uniform(config.min_work, config.max_work);
    price_job(job, machine.alpha, config.value_scale, config.must_finish, rng);
    jobs.push_back(job);
  }
  std::sort(jobs.begin(), jobs.end(), [](const auto& a, const auto& b) {
    return a.release < b.release;
  });
  return model::make_instance(machine, std::move(jobs));
}

model::Instance poisson_heavy_tail(const PoissonConfig& config,
                                   model::Machine machine,
                                   std::uint64_t seed) {
  PSS_REQUIRE(config.num_jobs >= 1, "need at least one job");
  util::Rng rng(seed);
  std::vector<model::Job> jobs;
  jobs.reserve(std::size_t(config.num_jobs));
  double t = 0.0;
  for (int i = 0; i < config.num_jobs; ++i) {
    t += rng.exponential(config.arrival_rate);
    model::Job job;
    job.release = t;
    const double span = rng.lognormal(std::log(config.mean_span) -
                                          0.5 * config.span_sigma *
                                              config.span_sigma,
                                      config.span_sigma);
    job.deadline = job.release + std::max(1e-3, span);
    job.work = rng.pareto(config.pareto_scale, config.pareto_shape);
    price_job(job, machine.alpha, config.value_scale, config.must_finish, rng);
    jobs.push_back(job);
  }
  return model::make_instance(machine, std::move(jobs));
}

model::Instance tight_laxity(const TightConfig& config, model::Machine machine,
                             std::uint64_t seed) {
  PSS_REQUIRE(config.num_jobs >= 1, "need at least one job");
  util::Rng rng(seed);
  std::vector<model::Job> jobs;
  jobs.reserve(std::size_t(config.num_jobs));
  for (int i = 0; i < config.num_jobs; ++i) {
    model::Job job;
    job.release = rng.uniform(0.0, config.horizon);
    job.work = rng.uniform(config.min_work, config.max_work);
    job.deadline = job.release + job.work / config.speed_target;
    price_job(job, machine.alpha, config.value_scale, config.must_finish, rng);
    jobs.push_back(job);
  }
  std::sort(jobs.begin(), jobs.end(), [](const auto& a, const auto& b) {
    return a.release < b.release;
  });
  return model::make_instance(machine, std::move(jobs));
}

model::Instance adversarial_theorem3(int num_jobs, model::Machine machine,
                                     double value_multiplier) {
  PSS_REQUIRE(num_jobs >= 1, "need at least one job");
  const double alpha = machine.alpha;
  const double n = double(num_jobs);
  std::vector<model::Job> jobs;
  jobs.reserve(std::size_t(num_jobs));
  for (int j = 1; j <= num_jobs; ++j) {
    model::Job job;
    job.release = double(j - 1);
    job.deadline = n;
    job.work = std::pow(n - double(j) + 1.0, -1.0 / alpha);
    if (value_multiplier > 0.0) {
      // Price far above any energy PD could plan, so nothing is rejected:
      // the planned speed is bounded by n (total work is O(n^{1-1/alpha})),
      // so energy per job is below w * n^{alpha-1}; multiply in slack.
      job.value = value_multiplier * job.work * std::pow(n, alpha - 1.0) *
                  std::pow(alpha, alpha);
    } else {
      job.value = util::kInf;
    }
    jobs.push_back(job);
  }
  return model::make_instance(machine, std::move(jobs));
}

model::Instance datacenter_day(const DatacenterConfig& config,
                               model::Machine machine, std::uint64_t seed) {
  PSS_REQUIRE(config.num_jobs >= 1, "need at least one job");
  util::Rng rng(seed);
  std::vector<model::Job> jobs;
  jobs.reserve(std::size_t(config.num_jobs));
  // Diurnal intensity via rejection sampling: intensity(t) peaks mid-day.
  auto intensity = [&](double t_hours) {
    const double phase = 2.0 * 3.14159265358979 * (t_hours / 24.0 - 0.25);
    const double base = 1.0;
    return base + (config.peak_rate_factor - 1.0) * 0.5 * (1.0 + std::sin(phase));
  };
  const double max_intensity = config.peak_rate_factor;
  int produced = 0;
  while (produced < config.num_jobs) {
    const double t = rng.uniform(0.0, config.hours);
    if (rng.uniform(0.0, max_intensity) > intensity(t)) continue;
    model::Job job;
    job.release = t;
    const bool interactive = rng.bernoulli(config.interactive_fraction);
    if (interactive) {
      job.work = rng.uniform(0.05, 0.5);
      job.deadline = job.release + rng.uniform(0.1, 0.5);  // minutes-scale
    } else {
      job.work = rng.uniform(1.0, 8.0);
      job.deadline = job.release + rng.uniform(2.0, 10.0);  // hours-scale
    }
    const double scale = interactive ? 3.0 * config.value_scale
                                     : config.value_scale;
    job.value = std::max(
        1e-9, scale * rng.uniform(0.5, 1.5) *
                  energy_fair_value(job, machine.alpha));
    jobs.push_back(job);
    ++produced;
  }
  std::sort(jobs.begin(), jobs.end(), [](const auto& a, const auto& b) {
    return a.release < b.release;
  });
  return model::make_instance(machine, std::move(jobs));
}

}  // namespace pss::workload
