// Workload generators for the experiment suite.
//
// The paper is distribution-free, so these families are chosen to exercise
// every regime of the algorithms: light vs. heavy load, loose vs. tight
// deadlines, cheap vs. precious jobs, bursty vs. smooth arrivals, plus the
// exact adversarial instance of Theorem 3's tightness argument. All
// generators are seeded and deterministic.
#pragma once

#include <cstdint>

#include "model/instance.hpp"

namespace pss::workload {

/// Uniformly random jobs: arrivals uniform on [0, horizon), window lengths
/// uniform on [min_span, max_span), workloads uniform on [min_work,
/// max_work). Values are priced at `value_scale` times the energy a job
/// would need running alone at its density (so value_scale ~ 1 makes
/// accept/reject genuinely contested).
struct UniformConfig {
  int num_jobs = 50;
  double horizon = 100.0;
  double min_span = 1.0;
  double max_span = 20.0;
  double min_work = 0.5;
  double max_work = 5.0;
  double value_scale = 2.0;
  bool must_finish = false;  // true => all values infinite (classical model)
};
[[nodiscard]] model::Instance uniform_random(const UniformConfig& config,
                                             model::Machine machine,
                                             std::uint64_t seed);

/// Poisson arrivals with exponential inter-arrival times, Pareto workloads
/// (heavy tail), log-normal spans, energy-indexed values as above.
struct PoissonConfig {
  int num_jobs = 50;
  double arrival_rate = 1.0;
  double pareto_shape = 1.8;   // < 2: heavy-tailed workloads
  double pareto_scale = 0.5;
  double mean_span = 8.0;
  double span_sigma = 0.5;     // log-space sigma
  double value_scale = 2.0;
  bool must_finish = false;
};
[[nodiscard]] model::Instance poisson_heavy_tail(const PoissonConfig& config,
                                                 model::Machine machine,
                                                 std::uint64_t seed);

/// Tight-laxity jobs: window length is work / speed_target, so every job
/// needs roughly `speed_target` if run alone. Stresses the rejection rule
/// and the multiprocessor dedicated/pool transitions.
struct TightConfig {
  int num_jobs = 40;
  double horizon = 50.0;
  double speed_target = 2.0;
  double min_work = 1.0;
  double max_work = 6.0;
  double value_scale = 1.0;
  bool must_finish = false;
};
[[nodiscard]] model::Instance tight_laxity(const TightConfig& config,
                                           model::Machine machine,
                                           std::uint64_t seed);

/// The lower-bound instance used in Theorem 3 (from Bansal–Kimbrel–Pruhs):
/// job j (1-based) arrives at time j-1 with workload (n-j+1)^(-1/alpha) and
/// common deadline n. With `value_multiplier` large every job is accepted
/// and PD's cost approaches alpha^alpha times the optimum as n grows.
/// value_multiplier <= 0 makes all jobs must-finish.
[[nodiscard]] model::Instance adversarial_theorem3(int num_jobs,
                                                   model::Machine machine,
                                                   double value_multiplier);

/// Synthetic datacenter day: diurnal sinusoidal arrival intensity over a
/// 24h horizon with a mix of short interactive jobs (tight windows, high
/// value density) and long batch jobs (loose windows, low value density).
struct DatacenterConfig {
  int num_jobs = 200;
  double hours = 24.0;
  double peak_rate_factor = 4.0;  // peak-to-trough arrival intensity
  double interactive_fraction = 0.6;
  double value_scale = 2.0;
};
[[nodiscard]] model::Instance datacenter_day(const DatacenterConfig& config,
                                             model::Machine machine,
                                             std::uint64_t seed);

/// Energy-fair price of a job: the energy it would cost to run the job
/// alone at constant speed over its own window, i.e. w^alpha / span^(alpha-1).
[[nodiscard]] double energy_fair_value(const model::Job& job, double alpha);

}  // namespace pss::workload
